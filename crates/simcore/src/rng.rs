//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (link jitter, packet loss, shortcut
//! selection, workload think times) draws from its own [`StreamRng`], derived from a
//! single experiment seed plus a stable stream label. Two components never share a
//! stream, so adding randomness to one component cannot perturb another — a property
//! the experiment harness relies on when comparing configurations.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::time::Duration;

/// A named, seedable random stream.
///
/// Internally a ChaCha12 generator (stable across platforms and `rand` point
/// releases), seeded from the experiment seed and a stream label via SplitMix64
/// mixing.
#[derive(Clone, Debug)]
pub struct StreamRng {
    inner: ChaCha12Rng,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash a stream label into a 64-bit value (FNV-1a).
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl StreamRng {
    /// Derive a stream from an experiment seed and a stable label such as
    /// `"link.jitter"` or `"overlay.shortcuts"`.
    pub fn new(seed: u64, label: &str) -> Self {
        let mixed = splitmix64(seed ^ label_hash(label));
        let mut key = [0u8; 32];
        let mut x = mixed;
        for chunk in key.chunks_mut(8) {
            x = splitmix64(x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        StreamRng {
            inner: ChaCha12Rng::from_seed(key),
        }
    }

    /// Derive a child stream (e.g. per-host) from this stream's label space.
    pub fn fork(&self, label: &str) -> Self {
        let mut clone = self.inner.clone();
        let seed = clone.next_u64();
        StreamRng::new(seed, label)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        let u: f64 = 1.0 - self.unit(); // in (0, 1]
        Duration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Normally distributed duration (Box–Muller), truncated at zero.
    pub fn normal(&mut self, mean: Duration, std_dev: Duration) -> Duration {
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Duration::from_secs_f64(mean.as_secs_f64() + z * std_dev.as_secs_f64())
    }

    /// Pareto-distributed duration with the given scale (minimum) and shape
    /// parameter `alpha`; heavy-tailed for small `alpha`. Used to model contended
    /// Planet-Lab scheduling delays.
    pub fn pareto(&mut self, scale: Duration, alpha: f64) -> Duration {
        let u: f64 = 1.0 - self.unit(); // in (0, 1]
        Duration::from_secs_f64(scale.as_secs_f64() / u.powf(1.0 / alpha))
    }

    /// A random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fill a byte slice with random data (e.g. random overlay addresses).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    /// Choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StreamRng::new(7, "link");
        let mut b = StreamRng::new(7, "link");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = StreamRng::new(7, "link");
        let mut b = StreamRng::new(7, "host");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = StreamRng::new(1, "u");
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = StreamRng::new(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = StreamRng::new(3, "exp");
        let mean = Duration::from_millis(10);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(mean).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 0.010).abs() < 0.001,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn normal_truncates_at_zero() {
        let mut r = StreamRng::new(4, "norm");
        for _ in 0..1000 {
            // huge std dev would go negative without clamping
            let d = r.normal(Duration::from_micros(1), Duration::from_millis(10));
            assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = StreamRng::new(5, "par");
        let scale = Duration::from_millis(2);
        for _ in 0..1000 {
            assert!(r.pareto(scale, 1.5) >= scale);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StreamRng::new(6, "sh");
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_deterministic_stream() {
        let parent1 = StreamRng::new(9, "p");
        let parent2 = StreamRng::new(9, "p");
        let mut a = parent1.fork("child");
        let mut b = parent2.fork("child");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
