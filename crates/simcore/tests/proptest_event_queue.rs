//! Property and stress tests for the hierarchical timing wheel.
//!
//! The wheel has three regions — a 512-slot near window, an overflow heap for
//! far-future events, and a pending-id bitmap — and until now it had only been
//! exercised with a few dozen nodes' worth of timers. These tests drive it
//! against a trivially-correct reference model (a `BTreeMap` keyed by
//! `(time, seq)`) through arbitrary interleavings of push/pop/cancel, and
//! through a 150k-event stress run whose far-future timers all land in the
//! overflow heap and migrate through many wheel rotations.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipop_simcore::{EventQueue, SimTime};

/// One scripted operation against the queue, decoded from a raw `u64`.
#[derive(Clone, Debug)]
enum Op {
    /// Push at `last popped time + delta` (the wheel forbids scheduling into
    /// the past). The delta classes target the wheel's regions: within the
    /// current slot granule, inside the 512-slot near window, and far enough
    /// out to land in the overflow heap.
    Push(u64),
    Pop,
    /// Cancel the k-th oldest still-pending id (no-op when none).
    Cancel(usize),
    /// `next_time` must agree with the model without disturbing anything.
    PeekTime,
}

/// The vendored proptest subset has no `prop_oneof`; decode the op kind and
/// its parameters from one word instead.
fn decode_op(word: u64) -> Op {
    let kind = word % 8;
    let arg = word / 8;
    match kind {
        0..=3 => Op::Push(match arg % 3 {
            0 => arg % 66_000,                         // same/adjacent slot
            1 => 66_000 + arg % 32_934_000,            // 512-slot near window
            _ => 33_000_000 + arg % 4_000_000_000_000, // overflow heap, ~an hour out
        }),
        4 | 5 => Op::Pop,
        6 => Op::Cancel(arg as usize % 8),
        _ => Op::PeekTime,
    }
}

proptest! {
    /// The queue agrees with a `BTreeMap<(time, seq), payload>` reference
    /// model under arbitrary interleavings of push, pop, cancel and peek.
    #[test]
    fn queue_matches_reference_model(words in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        // Pending ids in push order, paired with their model key.
        let mut live: Vec<(ipop_simcore::EventId, (u64, u64))> = Vec::new();
        let mut now = 0u64; // last popped time; pushes may not go below it
        let mut seq = 0u64;
        let mut payload = 0u64;

        for word in words {
            match decode_op(word) {
                Op::Push(delta) => {
                    let at = now + delta;
                    let id = queue.push(SimTime::from_nanos(at), payload);
                    model.insert((at, seq), payload);
                    live.push((id, (at, seq)));
                    seq += 1;
                    payload += 1;
                }
                Op::Pop => {
                    let got = queue.pop();
                    let want = model.pop_first();
                    prop_assert_eq!(got.is_some(), want.is_some(), "pop emptiness mismatch");
                    if let (Some(ev), Some(((at, _), val))) = (got, want) {
                        prop_assert_eq!(ev.at.as_nanos(), at);
                        prop_assert_eq!(ev.payload, val);
                        now = at;
                        live.retain(|(_, key)| model.contains_key(key));
                    }
                }
                Op::Cancel(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, key) = live.remove(k % live.len());
                    let cancelled = queue.cancel(id);
                    prop_assert_eq!(cancelled, model.remove(&key).is_some());
                }
                Op::PeekTime => {
                    let got = queue.next_time().map(|t| t.as_nanos());
                    let want = model.first_key_value().map(|((at, _), _)| *at);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(queue.len(), model.len());
            prop_assert_eq!(queue.is_empty(), model.is_empty());
        }

        // Drain: the remaining events come out in exact (time, seq) order.
        while let Some(((at, _), val)) = model.pop_first() {
            let ev = queue.pop().expect("queue drained before model");
            prop_assert_eq!(ev.at.as_nanos(), at);
            prop_assert_eq!(ev.payload, val);
        }
        prop_assert!(queue.pop().is_none());
    }
}

/// 150k pending events — most in the overflow heap, spanning thousands of
/// wheel rotations — interleaved with partial drains, must come out in global
/// `(time, seq)` order with nothing lost or duplicated.
#[test]
fn overflow_heap_at_150k_pending_events() {
    // Deterministic splitmix64 stream; no external RNG needed.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut model: BTreeMap<(u64, u64), u32> = BTreeMap::new();
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut pushed = 0u32;
    let mut popped = 0u64;

    // Rounds of bulk-push + partial-drain keep six figures pending while the
    // wheel's current time sweeps forward through overflow migrations.
    for round in 0..10 {
        let batch = if round == 0 { 150_000 } else { 30_000 };
        for _ in 0..batch {
            let r = rng();
            // ~80% far future (overflow heap, up to ~100 s out), the rest
            // inside the near window.
            let delta = if r % 10 < 8 {
                33_000_000 + r % 100_000_000_000
            } else {
                r % 33_000_000
            };
            let at = now + delta;
            queue.push(SimTime::from_nanos(at), pushed);
            model.insert((at, seq), pushed);
            seq += 1;
            pushed += 1;
        }
        assert_eq!(queue.len(), model.len());
        assert!(queue.len() >= 100_000, "stress keeps six figures pending");

        for _ in 0..25_000 {
            let ev = queue.pop().expect("model says events remain");
            let ((at, _), val) = model.pop_first().expect("model in sync");
            assert_eq!(ev.at.as_nanos(), at, "pop #{popped} out of time order");
            assert_eq!(ev.payload, val, "pop #{popped} wrong FIFO tie-break");
            now = at;
            popped += 1;
        }
    }

    // Full drain to the end.
    while let Some(((at, _), val)) = model.pop_first() {
        let ev = queue.pop().expect("queue drained early");
        assert_eq!(ev.at.as_nanos(), at);
        assert_eq!(ev.payload, val);
        popped += 1;
    }
    assert!(queue.pop().is_none());
    assert_eq!(popped, pushed as u64);
}

/// Cancelling deep inside the overflow heap (including the heap's current
/// minimum) never corrupts the order of the survivors.
#[test]
fn cancel_inside_overflow_heap() {
    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut model: BTreeMap<(u64, u64), u32> = BTreeMap::new();
    let mut ids = Vec::new();
    // All far-future: every event lands in the overflow heap.
    for i in 0..10_000u64 {
        let at = 50_000_000 + (i * 7919) % 1_000_000_000_000;
        ids.push((queue.push(SimTime::from_nanos(at), i as u32), (at, i)));
        model.insert((at, i), i as u32);
    }
    // Cancel every third, including whatever happens to be the minimum.
    for (id, key) in ids.iter().skip(1).step_by(3) {
        assert!(queue.cancel(*id));
        model.remove(key);
    }
    // Double-cancel is a no-op.
    assert!(!queue.cancel(ids[1].0));
    assert_eq!(queue.len(), model.len());
    while let Some(((at, _), val)) = model.pop_first() {
        let ev = queue.pop().expect("queue drained early");
        assert_eq!(ev.at.as_nanos(), at);
        assert_eq!(ev.payload, val);
    }
    assert!(queue.pop().is_none());
}
