//! Determinism guarantees of the simulation engine: identical seeds must yield
//! bit-identical event traces, regardless of how the run is sliced. Every
//! benchmark number in the workspace rests on this property.

use ipop_simcore::{Duration, SimTime, Simulator, StreamRng};

/// A world that records a trace of (time, stream draw) pairs.
struct World {
    rng: StreamRng,
    trace: Vec<(SimTime, u64)>,
}

/// A self-rescheduling stochastic workload: each event draws a value and
/// schedules the next event after a random exponential delay.
fn run_scenario(seed: u64, events: u32) -> Vec<(SimTime, u64)> {
    let rng = StreamRng::new(seed, "determinism.scenario");
    let mut sim = Simulator::new(World {
        rng,
        trace: Vec::new(),
    });
    fn step(w: &mut World, ctl: &mut ipop_simcore::Control<'_, World>, remaining: u32) {
        let value = w.rng.next_u64();
        w.trace.push((ctl.now(), value));
        if remaining > 0 {
            let delay = w.rng.exponential(Duration::from_millis(3));
            ctl.schedule_in(delay, move |w: &mut World, ctl| step(w, ctl, remaining - 1));
        }
    }
    let total = events;
    sim.schedule_in(Duration::from_millis(1), move |w: &mut World, ctl| {
        step(w, ctl, total - 1)
    });
    sim.run();
    sim.into_world().trace
}

#[test]
fn same_seed_gives_identical_traces() {
    let a = run_scenario(0xDECAF, 500);
    let b = run_scenario(0xDECAF, 500);
    assert_eq!(a.len(), 500);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_traces() {
    let a = run_scenario(1, 100);
    let b = run_scenario(2, 100);
    assert_ne!(a, b);
}

#[test]
fn fifo_tie_break_is_stable_for_simultaneous_events() {
    // Events scheduled for the same instant run in scheduling order, every time.
    fn order(seed: u64) -> Vec<u32> {
        let rng = StreamRng::new(seed, "tie");
        let mut sim = Simulator::new(World {
            rng,
            trace: Vec::new(),
        });
        let at = SimTime::ZERO + Duration::from_millis(5);
        for i in 0..32u32 {
            sim.schedule_at(at, move |w: &mut World, ctl| {
                w.trace.push((ctl.now(), u64::from(i)));
            });
        }
        sim.run();
        sim.into_world()
            .trace
            .iter()
            .map(|&(_, v)| v as u32)
            .collect()
    }
    let expected: Vec<u32> = (0..32).collect();
    assert_eq!(order(7), expected);
    assert_eq!(order(8), expected);
}
