//! Workloads used to evaluate IPOP — the same application mix as the paper's
//! Section IV.
//!
//! * [`ping`] — ICMP echo RTT measurement (Table I, Fig. 5).
//! * [`ttcp`] — bulk TCP throughput measurement (Tables II, III).
//! * [`mpi`] — a minimal tagged-message layer over TCP, standing in for the
//!   message-passing traffic LAM/MPI generates.
//! * [`nfs`] — a block-read remote file service with client-side caching (the NFS
//!   virtual file system of the LSS experiment).
//! * [`lss`] — the Light Scattering Spectroscopy master/worker application
//!   (Table IV).
//! * [`ssh`] — SSH-like session establishment (needed to start the LAM daemons in
//!   the paper's case study).
//!
//! Every application implements [`ipop::VirtualApp`] and is therefore oblivious to
//! whether it runs on a physical network (baseline) or on an IPOP virtual network.

pub mod lss;
pub mod mpi;
pub mod nfs;
pub mod ping;
pub mod ssh;
pub mod ttcp;

pub use lss::{LssFileServer, LssMaster, LssParams, LssReport, LssWorker};
pub use mpi::{Channel, Message};
pub use nfs::{NfsClient, NfsServer};
pub use ping::{PingApp, PingReport};
pub use ssh::{SshClient, SshServer};
pub use ttcp::{TtcpApp, TtcpReport};
