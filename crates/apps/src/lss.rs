//! The LSS (Light Scattering Spectroscopy) parallel application.
//!
//! Paper Section IV-C: LSS analyses a set of spectral images against database
//! files of analytically generated spectra, finding the least-squares best fit.
//! The parallel version distributes the per-database fitting across workers with
//! MPI; images and the 32 MB database files live on a central NFS server whose
//! client-side caches are cold for the first image and warm afterwards (Table IV).
//!
//! The reproduction keeps the same structure: a master hands out `(image,
//! database)` work units over [`crate::mpi`] channels; each worker fetches the
//! database through its [`crate::nfs::NfsClient`] (cold the first time, cached
//! afterwards), "computes" the least-squares fit for a duration proportional to
//! the database size, and returns the best fit; the master reduces the results and
//! moves to the next image. Execution times per image fall out of the simulation.

use std::any::Any;

use std::net::Ipv4Addr;

use ipop::app::{AppEnv, VirtualApp};
use ipop_netstack::SocketHandle;
use ipop_simcore::{Duration, SimTime};

use crate::mpi::{tags, Channel};
use crate::nfs::{NfsClient, NfsServer};

/// Parameters of the LSS workload (paper defaults: 6 images, 4 databases of 32 MB).
#[derive(Clone, Debug)]
pub struct LssParams {
    /// Number of spectral images to analyse.
    pub images: u32,
    /// Number of database files.
    pub databases: u32,
    /// Size of each database file in bytes.
    pub database_size: u64,
    /// Compute time for fitting one image against one megabyte of database on an
    /// otherwise idle node.
    pub compute_per_mb: Duration,
}

impl Default for LssParams {
    fn default() -> Self {
        LssParams {
            images: 6,
            databases: 4,
            database_size: 32 * 1024 * 1024,
            compute_per_mb: Duration::from_millis(1300),
        }
    }
}

impl LssParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> Self {
        LssParams {
            images: 2,
            databases: 2,
            database_size: 512 * 1024,
            compute_per_mb: Duration::from_millis(200),
        }
    }

    /// Compute time to fit one image against one full database.
    pub fn compute_per_database(&self) -> Duration {
        self.compute_per_mb
            .mul_f64(self.database_size as f64 / (1024.0 * 1024.0))
    }
}

/// Per-image timing recorded by the master.
#[derive(Clone, Debug, Default)]
pub struct LssReport {
    /// Completion time of each image, in seconds, in order.
    pub image_seconds: Vec<f64>,
}

impl LssReport {
    /// Time for the first image (cold NFS caches), as Table IV reports it.
    pub fn first_image(&self) -> f64 {
        self.image_seconds.first().copied().unwrap_or(0.0)
    }

    /// Total time for the remaining images (warm caches).
    pub fn remaining_images(&self) -> f64 {
        self.image_seconds.iter().skip(1).sum()
    }

    /// Total run time.
    pub fn total(&self) -> f64 {
        self.image_seconds.iter().sum()
    }
}

// ---------------------------------------------------------------------- file server

/// The NFS file server side of the experiment (runs on F4 in the paper's setup).
pub struct LssFileServer {
    params: LssParams,
    listener: Option<SocketHandle>,
    server: NfsServer,
    channels: Vec<Channel>,
}

impl LssFileServer {
    /// A file server exporting the workload's database files (ids `0..databases`).
    pub fn new(params: LssParams) -> Self {
        let mut server = NfsServer::new();
        for db in 0..params.databases {
            server.export(db, params.database_size);
        }
        LssFileServer {
            params,
            listener: None,
            server,
            channels: Vec::new(),
        }
    }

    /// Total blocks served so far (cold-vs-warm diagnostics).
    pub fn blocks_served(&self) -> u64 {
        self.server.blocks_served
    }
}

impl VirtualApp for LssFileServer {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        self.listener = env.stack.tcp_listen(2049).ok();
        let _ = &self.params;
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        if let Some(listener) = self.listener {
            while let Ok(Some(conn)) = env.stack.tcp_accept(listener) {
                self.channels.push(Channel::new(conn));
            }
        }
        for chan in &mut self.channels {
            self.server.serve(env.stack, chan);
            chan.pump(env.stack);
        }
        None
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// --------------------------------------------------------------------------- master

#[derive(Debug)]
enum MasterState {
    WaitingForWorkers,
    Dispatching { image: u32 },
    Finished,
}

/// The LSS master: distributes work units, reduces results, records per-image times.
pub struct LssMaster {
    params: LssParams,
    expected_workers: usize,
    listener: Option<SocketHandle>,
    workers: Vec<Channel>,
    state: MasterState,
    outstanding: u32,
    image_started: SimTime,
    report: LssReport,
}

impl LssMaster {
    /// A master that waits for `expected_workers` workers before starting.
    pub fn new(params: LssParams, expected_workers: usize) -> Self {
        LssMaster {
            params,
            expected_workers,
            listener: None,
            workers: Vec::new(),
            state: MasterState::WaitingForWorkers,
            outstanding: 0,
            image_started: SimTime::ZERO,
            report: LssReport::default(),
        }
    }

    /// The per-image timing report (valid once finished).
    pub fn report(&self) -> &LssReport {
        &self.report
    }

    fn dispatch_image(&mut self, env: &mut AppEnv<'_>, image: u32) {
        // Round-robin databases across workers, like the paper's static split.
        for db in 0..self.params.databases {
            let worker = (db as usize) % self.workers.len();
            let payload = [image.to_be_bytes(), db.to_be_bytes()].concat();
            self.workers[worker].send(env.stack, tags::WORK, &payload);
            self.outstanding += 1;
        }
        self.image_started = env.now;
    }
}

impl VirtualApp for LssMaster {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        self.listener = env.stack.tcp_listen(5300).ok();
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        if let Some(listener) = self.listener {
            while let Ok(Some(conn)) = env.stack.tcp_accept(listener) {
                self.workers.push(Channel::new(conn));
            }
        }
        // Always pump worker channels.
        let mut results = 0;
        for chan in &mut self.workers {
            while let Some(msg) = chan.recv(env.stack) {
                match msg.tag {
                    tags::RESULT => results += 1,
                    tags::REGISTER => {}
                    _ => {}
                }
            }
            chan.pump(env.stack);
        }
        match self.state {
            MasterState::WaitingForWorkers => {
                if self.workers.len() >= self.expected_workers {
                    self.state = MasterState::Dispatching { image: 0 };
                    self.dispatch_image(env, 0);
                }
            }
            MasterState::Dispatching { image } => {
                self.outstanding -= results;
                if self.outstanding == 0 {
                    self.report
                        .image_seconds
                        .push(env.now.saturating_since(self.image_started).as_secs_f64());
                    let next = image + 1;
                    if next >= self.params.images {
                        for chan in &mut self.workers {
                            chan.send(env.stack, tags::SHUTDOWN, &[]);
                        }
                        self.state = MasterState::Finished;
                    } else {
                        self.state = MasterState::Dispatching { image: next };
                        self.dispatch_image(env, next);
                    }
                }
            }
            MasterState::Finished => {}
        }
        None
    }

    fn finished(&self) -> bool {
        matches!(self.state, MasterState::Finished)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// --------------------------------------------------------------------------- worker

#[derive(Debug)]
enum WorkerState {
    Connecting,
    Idle,
    // The fields identify the in-flight request in `Debug` traces of stuck
    // workers; nothing reads them programmatically.
    #[allow(dead_code)]
    Fetching {
        image: u32,
        db: u32,
    },
    Computing {
        done_at: SimTime,
    },
    Finished,
}

/// An LSS worker: fetches databases through NFS, computes fits, reports results.
pub struct LssWorker {
    params: LssParams,
    master_addr: Ipv4Addr,
    nfs_addr: Ipv4Addr,
    master: Option<Channel>,
    nfs_chan: Option<Channel>,
    nfs: NfsClient,
    state: WorkerState,
    queue: Vec<(u32, u32)>,
    /// Work units completed.
    pub completed: u32,
}

impl LssWorker {
    /// A worker that reports to `master_addr` and reads files from `nfs_addr`.
    pub fn new(params: LssParams, master_addr: Ipv4Addr, nfs_addr: Ipv4Addr) -> Self {
        LssWorker {
            params,
            master_addr,
            nfs_addr,
            master: None,
            nfs_chan: None,
            nfs: NfsClient::new(),
            state: WorkerState::Connecting,
            queue: Vec::new(),
            completed: 0,
        }
    }

    /// NFS cache statistics `(hits, misses)` — the cold/warm evidence.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.nfs.cache_hits, self.nfs.cache_misses)
    }

    fn start_next(&mut self, env: &mut AppEnv<'_>) {
        if let Some((image, db)) = self.queue.pop() {
            if self.nfs.begin_read(db, self.params.database_size) {
                // Cached: go straight to compute.
                self.state = WorkerState::Computing {
                    done_at: env.now + self.params.compute_per_database(),
                };
                let _ = image;
            } else {
                self.state = WorkerState::Fetching { image, db };
            }
        } else {
            self.state = WorkerState::Idle;
        }
    }
}

impl VirtualApp for LssWorker {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        if let Ok(h) = env.stack.tcp_connect(self.master_addr, 5300, env.now) {
            self.master = Some(Channel::new(h));
        }
        if let Ok(h) = env.stack.tcp_connect(self.nfs_addr, 2049, env.now) {
            self.nfs_chan = Some(Channel::new(h));
        }
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        let master = self.master.as_mut()?;
        let nfs_chan = self.nfs_chan.as_mut()?;
        // Collect work and control messages.
        while let Some(msg) = master.recv(env.stack) {
            match msg.tag {
                tags::WORK if msg.payload.len() == 8 => {
                    let image = u32::from_be_bytes(msg.payload[0..4].try_into().unwrap());
                    let db = u32::from_be_bytes(msg.payload[4..8].try_into().unwrap());
                    self.queue.push((image, db));
                }
                tags::SHUTDOWN => self.state = WorkerState::Finished,
                _ => {}
            }
        }
        master.pump(env.stack);
        match self.state {
            WorkerState::Connecting => {
                if master.ready(env.stack) {
                    master.send(env.stack, tags::REGISTER, b"worker");
                    self.state = WorkerState::Idle;
                }
                None
            }
            WorkerState::Idle => {
                if !self.queue.is_empty() {
                    self.start_next(env);
                }
                match self.state {
                    WorkerState::Computing { done_at } => Some(done_at),
                    // A fetch makes progress as NFS replies arrive; no timer needed.
                    _ => None,
                }
            }
            WorkerState::Fetching { .. } => {
                if self.nfs.drive(env.stack, nfs_chan) {
                    self.state = WorkerState::Computing {
                        done_at: env.now + self.params.compute_per_database(),
                    };
                    if let WorkerState::Computing { done_at } = self.state {
                        return Some(done_at);
                    }
                }
                None
            }
            WorkerState::Computing { done_at } => {
                if env.now >= done_at {
                    master.send(env.stack, tags::RESULT, &[0u8; 64]);
                    self.completed += 1;
                    self.start_next(env);
                    match self.state {
                        WorkerState::Computing { done_at } => Some(done_at),
                        _ => None,
                    }
                } else {
                    Some(done_at)
                }
            }
            WorkerState::Finished => None,
        }
    }

    fn finished(&self) -> bool {
        matches!(self.state, WorkerState::Finished)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_compute_time_scales_with_database_size() {
        let p = LssParams::default();
        assert_eq!(p.compute_per_database(), Duration::from_millis(1300 * 32));
        let s = LssParams::small();
        assert!(s.compute_per_database() < p.compute_per_database());
    }

    #[test]
    fn report_splits_first_and_remaining() {
        let report = LssReport {
            image_seconds: vec![811.0, 167.0, 167.0],
        };
        assert_eq!(report.first_image(), 811.0);
        assert_eq!(report.remaining_images(), 334.0);
        assert_eq!(report.total(), 1145.0);
        let empty = LssReport::default();
        assert_eq!(empty.first_image(), 0.0);
        assert_eq!(empty.total(), 0.0);
    }
}
