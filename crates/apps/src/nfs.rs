//! An NFS-like remote file service with client-side caching.
//!
//! The paper's LSS experiment keeps its images, spectral databases and binaries on
//! a central file server (F4) exported over an NFS-based virtual file system with
//! *client-side disk caching*: the first image analysis is slow because every node
//! must fetch its 32 MB database files over the wide-area virtual network, and all
//! later images hit the warm cache (Table IV). This module provides that
//! behaviour: a block-oriented read protocol over TCP plus a whole-file client
//! cache.

use std::collections::HashMap;

use ipop_netstack::NetStack;

use crate::mpi::Channel;

/// Block size of the read protocol (NFSv3-era rsize).
pub const BLOCK_SIZE: usize = 32 * 1024;

/// Protocol tags.
mod tags {
    /// Client → server: read request.
    pub const READ: u32 = 10;
    /// Server → client: read reply (block data).
    pub const DATA: u32 = 11;
    /// Server → client: error (no such file / out of range).
    pub const ERROR: u32 = 12;
}

/// A read request: file id, block index.
fn encode_read(file_id: u32, block: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(8);
    v.extend_from_slice(&file_id.to_be_bytes());
    v.extend_from_slice(&block.to_be_bytes());
    v
}

fn decode_read(data: &[u8]) -> Option<(u32, u32)> {
    if data.len() != 8 {
        return None;
    }
    Some((
        u32::from_be_bytes([data[0], data[1], data[2], data[3]]),
        u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
    ))
}

/// The server side: a set of exported files (synthetic contents).
#[derive(Debug, Default)]
pub struct NfsServer {
    files: HashMap<u32, u64>,
    /// Blocks served (diagnostics / cold-vs-warm verification).
    pub blocks_served: u64,
}

impl NfsServer {
    /// A server exporting no files.
    pub fn new() -> Self {
        Self::default()
    }

    /// Export a synthetic file of `size` bytes under `file_id`.
    pub fn export(&mut self, file_id: u32, size: u64) {
        self.files.insert(file_id, size);
    }

    /// Size of an exported file.
    pub fn size_of(&self, file_id: u32) -> Option<u64> {
        self.files.get(&file_id).copied()
    }

    /// Handle any complete requests waiting on `channel`.
    pub fn serve(&mut self, stack: &mut NetStack, channel: &mut Channel) {
        while let Some(msg) = channel.recv(stack) {
            if msg.tag != tags::READ {
                continue;
            }
            let Some((file_id, block)) = decode_read(&msg.payload) else {
                channel.send(stack, tags::ERROR, b"bad request");
                continue;
            };
            let Some(&size) = self.files.get(&file_id) else {
                channel.send(stack, tags::ERROR, b"no such file");
                continue;
            };
            let offset = block as u64 * BLOCK_SIZE as u64;
            if offset >= size {
                channel.send(stack, tags::ERROR, b"eof");
                continue;
            }
            let len = ((size - offset) as usize).min(BLOCK_SIZE);
            // Synthetic file contents: a deterministic pattern including the block
            // number, so clients can verify integrity.
            let mut reply = Vec::with_capacity(8 + len);
            reply.extend_from_slice(&msg.payload);
            reply.resize(8 + len, (block % 251) as u8);
            self.blocks_served += 1;
            channel.send(stack, tags::DATA, &reply);
        }
    }
}

/// Progress of an ongoing whole-file fetch.
#[derive(Debug)]
struct Fetch {
    file_id: u32,
    next_block_to_request: u32,
    blocks_received: u32,
    total_blocks: u32,
    window: u32,
}

/// The client side: whole-file reads with a local cache.
#[derive(Debug, Default)]
pub struct NfsClient {
    cache: HashMap<u32, u64>,
    fetch: Option<Fetch>,
    /// Cache hits (whole-file).
    pub cache_hits: u64,
    /// Whole-file fetches that had to go to the server.
    pub cache_misses: u64,
    /// Bytes fetched over the network.
    pub bytes_fetched: u64,
}

impl NfsClient {
    /// A client with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is `file_id` fully cached?
    pub fn is_cached(&self, file_id: u32) -> bool {
        self.cache.contains_key(&file_id)
    }

    /// Drop the whole cache (used to model a cold start).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Begin reading `file_id` of `size` bytes. Returns `true` immediately if the
    /// file is already cached; otherwise starts a fetch which must be driven by
    /// [`NfsClient::drive`] until it reports completion.
    pub fn begin_read(&mut self, file_id: u32, size: u64) -> bool {
        if self.cache.contains_key(&file_id) {
            self.cache_hits += 1;
            return true;
        }
        self.cache_misses += 1;
        let total_blocks = size.div_ceil(BLOCK_SIZE as u64) as u32;
        self.fetch = Some(Fetch {
            file_id,
            next_block_to_request: 0,
            blocks_received: 0,
            total_blocks,
            window: 8,
        });
        false
    }

    /// Drive an ongoing fetch: issue outstanding block requests (up to a fixed
    /// window) and consume replies. Returns `true` when the file is fully fetched
    /// (and now cached).
    pub fn drive(&mut self, stack: &mut NetStack, channel: &mut Channel) -> bool {
        let Some(fetch) = &mut self.fetch else {
            return true;
        };
        // Consume replies.
        while let Some(msg) = channel.recv(stack) {
            if msg.tag == tags::DATA && msg.payload.len() >= 8 {
                if let Some((fid, _block)) = decode_read(&msg.payload[..8]) {
                    if fid == fetch.file_id {
                        fetch.blocks_received += 1;
                        self.bytes_fetched += (msg.payload.len() - 8) as u64;
                    }
                }
            }
        }
        // Issue more requests, keeping `window` outstanding.
        let outstanding = fetch.next_block_to_request - fetch.blocks_received;
        let mut budget = fetch.window.saturating_sub(outstanding);
        while budget > 0 && fetch.next_block_to_request < fetch.total_blocks {
            channel.send(
                stack,
                tags::READ,
                &encode_read(fetch.file_id, fetch.next_block_to_request),
            );
            fetch.next_block_to_request += 1;
            budget -= 1;
        }
        if fetch.blocks_received >= fetch.total_blocks {
            let file_id = fetch.file_id;
            let size = fetch.total_blocks as u64 * BLOCK_SIZE as u64;
            self.cache.insert(file_id, size);
            self.fetch = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_netstack::StackConfig;
    use ipop_simcore::{Duration, SimTime};
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pump(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime) {
        for _ in 0..10_000 {
            a.poll(*now);
            b.poll(*now);
            let fa = a.take_packets();
            let fb = b.take_packets();
            if fa.is_empty() && fb.is_empty() {
                break;
            }
            *now += Duration::from_micros(200);
            for p in fa {
                b.handle_packet(*now, p);
            }
            for p in fb {
                a.handle_packet(*now, p);
            }
        }
    }

    #[test]
    fn fetch_then_cache_hit() {
        let mut cs = NetStack::new(StackConfig::new(C));
        let mut ss = NetStack::new(StackConfig::new(S));
        let listener = ss.tcp_listen(2049).unwrap();
        let mut now = SimTime::ZERO;
        let ch = cs.tcp_connect(S, 2049, now).unwrap();
        let mut client_chan = Channel::new(ch);
        pump(&mut cs, &mut ss, &mut now);
        let sh = ss.tcp_accept(listener).unwrap().unwrap();
        let mut server_chan = Channel::new(sh);

        let mut server = NfsServer::new();
        let file_size = 1_000_000u64;
        server.export(7, file_size);
        let mut client = NfsClient::new();

        assert!(
            !client.begin_read(7, file_size),
            "cold cache requires a fetch"
        );
        for _ in 0..10_000 {
            let done = client.drive(&mut cs, &mut client_chan);
            pump(&mut cs, &mut ss, &mut now);
            server.serve(&mut ss, &mut server_chan);
            pump(&mut cs, &mut ss, &mut now);
            if done {
                break;
            }
        }
        assert!(client.is_cached(7));
        assert!(client.bytes_fetched >= file_size);
        assert_eq!(client.cache_misses, 1);
        let blocks = file_size.div_ceil(BLOCK_SIZE as u64);
        assert_eq!(server.blocks_served, blocks);

        // Second read: pure cache hit, no further traffic.
        assert!(client.begin_read(7, file_size));
        assert_eq!(client.cache_hits, 1);
        assert_eq!(server.blocks_served, blocks);

        // Clearing the cache forces a refetch.
        client.clear_cache();
        assert!(!client.begin_read(7, file_size));
    }

    #[test]
    fn unknown_file_gets_error() {
        let mut server = NfsServer::new();
        assert_eq!(server.size_of(3), None);
        server.export(3, 100);
        assert_eq!(server.size_of(3), Some(100));
    }
}
