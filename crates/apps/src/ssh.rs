//! A minimal SSH-like session-establishment workload.
//!
//! The paper's LSS experiment needs SSH to start the LAM daemons on every compute
//! node before the MPI run begins; the point being demonstrated is that an
//! interactive, connection-oriented service "just works" across firewalled domains
//! over IPOP. This module models the part of SSH that matters for that claim: a
//! TCP connection to port 22 followed by a banner + key-exchange style exchange of
//! several small request/response messages, with the total session-setup latency
//! recorded.

use std::any::Any;
use std::net::Ipv4Addr;

use ipop::app::{AppEnv, VirtualApp};
use ipop_netstack::SocketHandle;
use ipop_simcore::SimTime;

use crate::mpi::Channel;

const SSH_PORT: u16 = 22;
const HANDSHAKE_ROUNDS: u32 = 4;

/// An SSH-like server: answers every handshake message on port 22.
pub struct SshServer {
    listener: Option<SocketHandle>,
    sessions: Vec<Channel>,
    /// Completed handshake exchanges served.
    pub exchanges: u64,
}

impl SshServer {
    /// A new server (listens once started).
    pub fn new() -> Self {
        SshServer {
            listener: None,
            sessions: Vec::new(),
            exchanges: 0,
        }
    }
}

impl Default for SshServer {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualApp for SshServer {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        self.listener = env.stack.tcp_listen(SSH_PORT).ok();
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        if let Some(listener) = self.listener {
            while let Ok(Some(conn)) = env.stack.tcp_accept(listener) {
                self.sessions.push(Channel::new(conn));
            }
        }
        for chan in &mut self.sessions {
            while let Some(msg) = chan.recv(env.stack) {
                self.exchanges += 1;
                chan.send(env.stack, msg.tag, b"SSH-2.0-ipop-sim ok");
            }
            chan.pump(env.stack);
        }
        None
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An SSH-like client that opens sessions to a list of hosts, one after another
/// (the way `lamboot` walks its host file), and records per-host setup latency.
pub struct SshClient {
    targets: Vec<Ipv4Addr>,
    current: usize,
    chan: Option<Channel>,
    round: u32,
    session_started: SimTime,
    /// Session-setup latency per target, in milliseconds.
    pub setup_ms: Vec<f64>,
}

impl SshClient {
    /// A client that will connect to each of `targets` in order.
    pub fn new(targets: Vec<Ipv4Addr>) -> Self {
        SshClient {
            targets,
            current: 0,
            chan: None,
            round: 0,
            session_started: SimTime::ZERO,
            setup_ms: Vec::new(),
        }
    }
}

impl VirtualApp for SshClient {
    fn on_start(&mut self, _env: &mut AppEnv<'_>) {}

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        if self.current >= self.targets.len() {
            return None;
        }
        if self.chan.is_none() {
            let target = self.targets[self.current];
            if let Ok(h) = env.stack.tcp_connect(target, SSH_PORT, env.now) {
                self.chan = Some(Channel::new(h));
                self.round = 0;
                self.session_started = env.now;
            }
            return None;
        }
        let chan = self.chan.as_mut().expect("channel exists");
        if !chan.ready(env.stack) {
            if chan.closed(env.stack) {
                // Connection refused/blocked: record a failure as an infinite setup.
                self.setup_ms.push(f64::INFINITY);
                self.chan = None;
                self.current += 1;
            }
            return None;
        }
        if self.round == 0 {
            chan.send(env.stack, 0, b"SSH-2.0-ipop-sim client hello");
            self.round = 1;
        }
        while let Some(_reply) = chan.recv(env.stack) {
            if self.round >= HANDSHAKE_ROUNDS {
                self.setup_ms.push(
                    env.now
                        .saturating_since(self.session_started)
                        .as_millis_f64(),
                );
                let socket = chan.socket();
                let _ = env.stack.tcp_close(socket);
                self.chan = None;
                self.current += 1;
                return None;
            }
            chan.send(env.stack, self.round, b"kexinit/auth");
            self.round += 1;
        }
        None
    }

    fn finished(&self) -> bool {
        self.current >= self.targets.len()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop::plain::PlainHostAgent;
    use ipop_netsim::{lan_pair, Network, NetworkSim};
    use ipop_simcore::Duration;

    #[test]
    fn ssh_session_setup_completes_on_lan() {
        let mut net = Network::new(31);
        let (a, b, _, b_addr) = lan_pair(&mut net);
        net.set_agent(
            a,
            Box::new(PlainHostAgent::new(
                net.host(a).addr,
                Box::new(SshClient::new(vec![b_addr])),
            )),
        );
        net.set_agent(
            b,
            Box::new(PlainHostAgent::new(
                net.host(b).addr,
                Box::new(SshServer::new()),
            )),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(10));
        let client = sim
            .agent_as::<PlainHostAgent>(a)
            .unwrap()
            .app_as::<SshClient>()
            .unwrap();
        assert!(client.finished());
        assert_eq!(client.setup_ms.len(), 1);
        assert!(client.setup_ms[0].is_finite());
        assert!(
            client.setup_ms[0] < 100.0,
            "LAN ssh setup took {} ms",
            client.setup_ms[0]
        );
        let server = sim
            .agent_as::<PlainHostAgent>(b)
            .unwrap()
            .app_as::<SshServer>()
            .unwrap();
        assert_eq!(server.exchanges as u32, HANDSHAKE_ROUNDS);
    }
}
