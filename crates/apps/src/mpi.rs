//! A minimal message-passing layer over TCP sockets.
//!
//! The paper's LSS case study uses LAM/MPI over IPOP. Rather than reproduce an MPI
//! implementation, this module provides the piece LSS actually exercises: reliable,
//! ordered, tagged messages between a master and its workers over TCP connections
//! on the virtual network. Messages are framed as `(length, tag)` headers followed
//! by the payload, exactly the kind of traffic a rendezvous-protocol MPI generates
//! for medium-sized messages.

use ipop_netstack::{NetStack, SocketHandle};

/// A tagged message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Application-defined tag (like an MPI tag).
    pub tag: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A bidirectional message channel over one TCP connection.
#[derive(Debug)]
pub struct Channel {
    socket: SocketHandle,
    rx: Vec<u8>,
    tx_backlog: Vec<u8>,
}

impl Channel {
    /// Wrap an (already connecting or established) TCP socket.
    pub fn new(socket: SocketHandle) -> Self {
        Channel {
            socket,
            rx: Vec::new(),
            tx_backlog: Vec::new(),
        }
    }

    /// The underlying socket handle.
    pub fn socket(&self) -> SocketHandle {
        self.socket
    }

    /// True once the underlying connection is established.
    pub fn ready(&self, stack: &NetStack) -> bool {
        stack.tcp_is_established(self.socket)
    }

    /// True when the connection is gone.
    pub fn closed(&self, stack: &NetStack) -> bool {
        stack.tcp_is_closed(self.socket)
    }

    /// Queue a message for sending (bytes are pushed into the socket as buffer
    /// space allows; call [`Channel::pump`] from the application's poll).
    pub fn send(&mut self, stack: &mut NetStack, tag: u32, payload: &[u8]) {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&tag.to_be_bytes());
        frame.extend_from_slice(payload);
        self.tx_backlog.extend_from_slice(&frame);
        self.pump(stack);
    }

    /// Push backlog into the socket and pull received bytes out of it.
    pub fn pump(&mut self, stack: &mut NetStack) {
        if !self.tx_backlog.is_empty() {
            if let Ok(n) = stack.tcp_send(self.socket, &self.tx_backlog) {
                self.tx_backlog.drain(..n);
            }
        }
        loop {
            let chunk = stack.tcp_recv(self.socket, 1 << 20).unwrap_or_default();
            if chunk.is_empty() {
                break;
            }
            self.rx.extend_from_slice(&chunk);
        }
    }

    /// Bytes still waiting to enter the socket's send buffer.
    pub fn backlog(&self) -> usize {
        self.tx_backlog.len()
    }

    /// Extract the next complete message, if one has arrived.
    pub fn recv(&mut self, stack: &mut NetStack) -> Option<Message> {
        self.pump(stack);
        if self.rx.len() < 8 {
            return None;
        }
        let len = u32::from_be_bytes([self.rx[0], self.rx[1], self.rx[2], self.rx[3]]) as usize;
        if self.rx.len() < 8 + len {
            return None;
        }
        let tag = u32::from_be_bytes([self.rx[4], self.rx[5], self.rx[6], self.rx[7]]);
        let payload = self.rx[8..8 + len].to_vec();
        self.rx.drain(..8 + len);
        Some(Message { tag, payload })
    }
}

/// Well-known tags used by the LSS application.
pub mod tags {
    /// Master → worker: analyse this work unit.
    pub const WORK: u32 = 1;
    /// Worker → master: partial least-squares result.
    pub const RESULT: u32 = 2;
    /// Master → worker: all images done, shut down.
    pub const SHUTDOWN: u32 = 3;
    /// Worker → master: hello / registration.
    pub const REGISTER: u32 = 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_netstack::StackConfig;
    use ipop_simcore::{Duration, SimTime};
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pump_stacks(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime) {
        for _ in 0..10_000 {
            a.poll(*now);
            b.poll(*now);
            let fa = a.take_packets();
            let fb = b.take_packets();
            if fa.is_empty() && fb.is_empty() {
                break;
            }
            *now += Duration::from_micros(200);
            for p in fa {
                b.handle_packet(*now, p);
            }
            for p in fb {
                a.handle_packet(*now, p);
            }
        }
    }

    #[test]
    fn tagged_messages_round_trip_in_order() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let listener = sb.tcp_listen(5555).unwrap();
        let mut now = SimTime::ZERO;
        let ca = sa.tcp_connect(B, 5555, now).unwrap();
        let mut chan_a = Channel::new(ca);
        pump_stacks(&mut sa, &mut sb, &mut now);
        let cb = sb.tcp_accept(listener).unwrap().unwrap();
        let mut chan_b = Channel::new(cb);
        assert!(chan_a.ready(&sa));

        chan_a.send(&mut sa, tags::WORK, b"image-1:db-2");
        chan_a.send(&mut sa, tags::WORK, b"image-1:db-3");
        pump_stacks(&mut sa, &mut sb, &mut now);
        let m1 = chan_b.recv(&mut sb).expect("first message");
        let m2 = chan_b.recv(&mut sb).expect("second message");
        assert_eq!(
            m1,
            Message {
                tag: tags::WORK,
                payload: b"image-1:db-2".to_vec()
            }
        );
        assert_eq!(m2.payload, b"image-1:db-3");
        assert!(chan_b.recv(&mut sb).is_none());

        // Reply direction, with a large payload spanning several segments.
        let big = vec![7u8; 50_000];
        chan_b.send(&mut sb, tags::RESULT, &big);
        for _ in 0..100 {
            pump_stacks(&mut sa, &mut sb, &mut now);
            chan_b.pump(&mut sb);
            if let Some(reply) = chan_a.recv(&mut sa) {
                assert_eq!(reply.tag, tags::RESULT);
                assert_eq!(reply.payload, big);
                return;
            }
        }
        panic!("large reply never arrived");
    }
}
