//! The `ttcp` workload: bulk TCP transfer throughput measurement.
//!
//! Tables II and III of the paper use `ttcp` to compare the throughput of a single
//! IPOP link against the physical network, on a LAN (92.97 MB transfer) and on a
//! WAN (13.09 MB and 92.97 MB transfers), for both Brunet transports. The sender
//! opens a TCP connection, streams a fixed number of bytes and closes; throughput
//! is bytes divided by the time from connection establishment to the last byte
//! being acknowledged.

use std::any::Any;
use std::net::Ipv4Addr;

use ipop::app::{AppEnv, VirtualApp};
use ipop_netstack::SocketHandle;
use ipop_simcore::{stats::throughput_kbps, SimTime};

/// The standard transfer sizes used in the paper.
pub mod sizes {
    /// 92.97 MB — the LAN transfer and the larger WAN transfer.
    pub const LARGE: u64 = 92_970_000;
    /// 13.09 MB — the smaller WAN transfer.
    pub const SMALL: u64 = 13_090_000;
}

/// Result of a completed transfer (sender side).
#[derive(Clone, Copy, Debug, Default)]
pub struct TtcpReport {
    /// Bytes transferred.
    pub bytes: u64,
    /// Transfer duration in seconds (connect-to-last-ack).
    pub seconds: f64,
    /// Throughput in kilobytes per second, the unit the paper's tables use.
    pub kbps: f64,
}

enum Role {
    Sender {
        target: Ipv4Addr,
        port: u16,
        total: u64,
    },
    Receiver {
        port: u16,
    },
}

enum State {
    Idle,
    Connecting(SocketHandle),
    Sending {
        socket: SocketHandle,
        sent: u64,
        started: SimTime,
    },
    Draining {
        socket: SocketHandle,
        started: SimTime,
    },
    Listening(SocketHandle),
    Receiving {
        socket: SocketHandle,
        received: u64,
    },
    Done,
}

/// A ttcp endpoint (sender or receiver).
pub struct TtcpApp {
    role: Role,
    state: State,
    chunk: Vec<u8>,
    report: TtcpReport,
    received_bytes: u64,
    start_at: Option<SimTime>,
    start_delay: ipop_simcore::Duration,
}

impl TtcpApp {
    /// A sender that will stream `total` bytes to `target:port`.
    pub fn sender(target: Ipv4Addr, port: u16, total: u64) -> Self {
        TtcpApp {
            role: Role::Sender {
                target,
                port,
                total,
            },
            state: State::Idle,
            chunk: vec![0x54; 8192],
            report: TtcpReport::default(),
            received_bytes: 0,
            start_at: None,
            start_delay: ipop_simcore::Duration::ZERO,
        }
    }

    /// A receiver listening on `port`, counting whatever arrives.
    pub fn receiver(port: u16) -> Self {
        TtcpApp {
            role: Role::Receiver { port },
            state: State::Idle,
            chunk: Vec::new(),
            report: TtcpReport::default(),
            received_bytes: 0,
            start_at: None,
            start_delay: ipop_simcore::Duration::ZERO,
        }
    }

    /// Builder (sender side): delay the connection attempt, giving an IPOP overlay
    /// time to self-configure before the measurement starts.
    pub fn with_start_delay(mut self, delay: ipop_simcore::Duration) -> Self {
        self.start_delay = delay;
        self
    }

    /// The sender-side throughput report (valid once finished).
    pub fn report(&self) -> TtcpReport {
        self.report
    }

    /// Bytes received so far (receiver side).
    pub fn received(&self) -> u64 {
        self.received_bytes
    }
}

impl VirtualApp for TtcpApp {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        match &self.role {
            Role::Sender { .. } => {
                self.start_at = Some(env.now + self.start_delay);
            }
            Role::Receiver { port } => {
                if let Ok(h) = env.stack.tcp_listen(*port) {
                    self.state = State::Listening(h);
                }
            }
        }
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        let now = env.now;
        loop {
            match self.state {
                State::Idle => {
                    let Role::Sender { target, port, .. } = &self.role else {
                        return None;
                    };
                    let start_at = self.start_at?;
                    if now < start_at {
                        return Some(start_at);
                    }
                    if let Ok(h) = env.stack.tcp_connect(*target, *port, env.now) {
                        self.state = State::Connecting(h);
                        continue;
                    }
                    return None;
                }
                State::Done => return None,
                State::Connecting(h) => {
                    if env.stack.tcp_is_established(h) {
                        self.state = State::Sending {
                            socket: h,
                            sent: 0,
                            started: now,
                        };
                        continue;
                    }
                    if env.stack.tcp_is_closed(h) {
                        self.state = State::Done;
                    }
                    return None;
                }
                State::Sending {
                    socket,
                    mut sent,
                    started,
                } => {
                    let Role::Sender { total, .. } = &self.role else {
                        return None;
                    };
                    let total = *total;
                    let mut wrote_any = false;
                    while sent < total {
                        let want = ((total - sent) as usize).min(self.chunk.len());
                        let n = env.stack.tcp_send(socket, &self.chunk[..want]).unwrap_or(0);
                        if n == 0 {
                            break;
                        }
                        sent += n as u64;
                        wrote_any = true;
                    }
                    if sent >= total {
                        let _ = env.stack.tcp_close(socket);
                        self.state = State::Draining { socket, started };
                        continue;
                    }
                    self.state = State::Sending {
                        socket,
                        sent,
                        started,
                    };
                    let _ = wrote_any;
                    // Wait for buffer space to open up (ack arrival re-polls us).
                    return None;
                }
                State::Draining { socket, started } => {
                    if env.stack.tcp_unacked(socket) == 0 || env.stack.tcp_is_closed(socket) {
                        let Role::Sender { total, .. } = &self.role else {
                            return None;
                        };
                        let elapsed = now.saturating_since(started);
                        self.report = TtcpReport {
                            bytes: *total,
                            seconds: elapsed.as_secs_f64(),
                            kbps: throughput_kbps(*total, elapsed),
                        };
                        self.state = State::Done;
                    }
                    return None;
                }
                State::Listening(h) => match env.stack.tcp_accept(h) {
                    Ok(Some(conn)) => {
                        self.state = State::Receiving {
                            socket: conn,
                            received: 0,
                        };
                        continue;
                    }
                    _ => return None,
                },
                State::Receiving {
                    socket,
                    mut received,
                } => {
                    loop {
                        let data = env.stack.tcp_recv(socket, 1 << 20).unwrap_or_default();
                        if data.is_empty() {
                            break;
                        }
                        received += data.len() as u64;
                    }
                    self.received_bytes = received;
                    if env.stack.tcp_recv_finished(socket) || env.stack.tcp_is_closed(socket) {
                        let _ = env.stack.tcp_close(socket);
                        self.state = State::Done;
                        return None;
                    }
                    self.state = State::Receiving { socket, received };
                    return None;
                }
            }
        }
    }

    fn finished(&self) -> bool {
        matches!(self.state, State::Done)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop::plain::PlainHostAgent;
    use ipop_netsim::{lan_pair, wan_pair, Network, NetworkSim};
    use ipop_simcore::Duration;

    fn run_transfer(wan: bool, bytes: u64) -> (TtcpReport, u64) {
        let mut net = Network::new(21);
        let (a, b, _, b_addr) = if wan {
            wan_pair(&mut net)
        } else {
            lan_pair(&mut net)
        };
        net.set_agent(
            a,
            Box::new(PlainHostAgent::new(
                net.host(a).addr,
                Box::new(TtcpApp::sender(b_addr, 5201, bytes)),
            )),
        );
        net.set_agent(
            b,
            Box::new(PlainHostAgent::new(
                net.host(b).addr,
                Box::new(TtcpApp::receiver(5201)),
            )),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(300));
        let sender = sim
            .agent_as::<PlainHostAgent>(a)
            .unwrap()
            .app_as::<TtcpApp>()
            .unwrap();
        let receiver = sim
            .agent_as::<PlainHostAgent>(b)
            .unwrap()
            .app_as::<TtcpApp>()
            .unwrap();
        assert!(sender.finished(), "sender did not finish");
        (sender.report(), receiver.received())
    }

    #[test]
    fn lan_transfer_completes_and_reaches_megabytes_per_second() {
        let (report, received) = run_transfer(false, 2_000_000);
        assert_eq!(received, 2_000_000);
        assert!(report.kbps > 2_000.0, "LAN throughput {} KB/s", report.kbps);
        assert!(report.seconds > 0.0);
    }

    #[test]
    fn wan_transfer_is_bounded_by_the_access_link() {
        let (report, received) = run_transfer(true, 2_000_000);
        assert_eq!(received, 2_000_000);
        // The WAN pair uses 12 Mbit/s access links: ≈1500 KB/s ceiling.
        assert!(report.kbps < 1_700.0, "WAN throughput {} KB/s", report.kbps);
        assert!(
            report.kbps > 300.0,
            "WAN throughput suspiciously low: {} KB/s",
            report.kbps
        );
    }
}
