//! The `ping` workload: ICMP echo round-trip-time measurement.
//!
//! Table I of the paper reports the mean and standard deviation of 1000 ping RTTs
//! between testbed machines, on the physical network and over IPOP (TCP and UDP
//! modes); Fig. 5 is the distribution of 10 000 RTTs across the Planet-Lab overlay.
//! This application reproduces the measurement procedure: send an echo request
//! every `interval`, match replies by sequence number, record the RTT.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use ipop::app::{AppEnv, VirtualApp};
use ipop_netstack::SocketHandle;
use ipop_simcore::{Duration, OnlineStats, SimTime, Summary};

/// Results of a ping run.
#[derive(Clone, Debug, Default)]
pub struct PingReport {
    /// Round-trip times, in the order replies arrived.
    pub rtts_ms: Vec<f64>,
    /// Requests that never got a reply within the timeout.
    pub lost: u32,
}

impl PingReport {
    /// Mean/std-dev summary in milliseconds (what Table I reports).
    pub fn summary(&self) -> Summary {
        let mut stats = OnlineStats::new();
        for &ms in &self.rtts_ms {
            stats.add(ms);
        }
        stats.summary()
    }
}

/// ICMP echo measurement application.
pub struct PingApp {
    target: Ipv4Addr,
    count: u32,
    interval: Duration,
    payload_len: usize,
    timeout: Duration,

    start_delay: Duration,
    socket: Option<SocketHandle>,
    next_seq: u32,
    next_send_at: SimTime,
    in_flight: HashMap<u16, SimTime>,
    report: PingReport,
}

impl PingApp {
    /// Ping `target` `count` times, one request every `interval`.
    pub fn new(target: Ipv4Addr, count: u32, interval: Duration) -> Self {
        PingApp {
            target,
            count,
            interval,
            payload_len: 56,
            timeout: Duration::from_secs(5),
            start_delay: Duration::ZERO,
            socket: None,
            next_seq: 0,
            next_send_at: SimTime::ZERO,
            in_flight: HashMap::new(),
            report: PingReport::default(),
        }
    }

    /// Builder: set the echo payload size (default 56 bytes, like `ping`).
    pub fn with_payload(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Builder: set the per-request timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Builder: wait this long before the first request (lets an IPOP overlay
    /// self-configure so the measurement reflects steady state, as in the paper).
    pub fn with_start_delay(mut self, delay: Duration) -> Self {
        self.start_delay = delay;
        self
    }

    /// The measurement report (valid once [`VirtualApp::finished`] is true).
    pub fn report(&self) -> &PingReport {
        &self.report
    }

    fn completed(&self) -> u32 {
        self.report.rtts_ms.len() as u32 + self.report.lost
    }
}

impl VirtualApp for PingApp {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        self.socket = Some(env.stack.ping_open());
        self.next_send_at = env.now + self.start_delay;
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        let socket = self.socket?;
        let now = env.now;

        // Collect replies.
        while let Ok(Some(reply)) = env.stack.ping_recv(socket) {
            if let Some(sent_at) = self.in_flight.remove(&reply.sequence) {
                self.report
                    .rtts_ms
                    .push(now.saturating_since(sent_at).as_millis_f64());
            }
        }

        // Expire requests that timed out.
        let timeout = self.timeout;
        let mut lost = 0;
        self.in_flight.retain(|_, sent_at| {
            if now.saturating_since(*sent_at) > timeout {
                lost += 1;
                false
            } else {
                true
            }
        });
        self.report.lost += lost;

        // Send the next requests that are due.
        while self.next_seq < self.count && now >= self.next_send_at {
            let seq = self.next_seq as u16;
            if env
                .stack
                .ping_send(socket, self.target, seq, self.payload_len)
                .is_ok()
            {
                self.in_flight.insert(seq, now);
            }
            self.next_seq += 1;
            self.next_send_at += self.interval;
        }

        if self.finished() {
            None
        } else if self.next_seq < self.count {
            Some(self.next_send_at)
        } else {
            // All sent: wake when the oldest outstanding request would time out.
            self.in_flight.values().min().map(|t| *t + self.timeout)
        }
    }

    fn finished(&self) -> bool {
        self.socket.is_some() && self.completed() >= self.count
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop::plain::PlainHostAgent;
    use ipop::NullApp;
    use ipop_netsim::{lan_pair, Network, NetworkSim};

    #[test]
    fn ping_over_physical_lan_measures_sub_millisecond_rtts() {
        let mut net = Network::new(11);
        let (a, b, _, b_addr) = lan_pair(&mut net);
        net.set_agent(
            a,
            Box::new(PlainHostAgent::new(
                net.host(a).addr,
                Box::new(PingApp::new(b_addr, 20, Duration::from_millis(10))),
            )),
        );
        net.set_agent(
            b,
            Box::new(PlainHostAgent::new(net.host(b).addr, Box::new(NullApp))),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(5));
        let agent = sim.agent_as::<PlainHostAgent>(a).unwrap();
        let app = agent.app_as::<PingApp>().unwrap();
        assert!(app.finished());
        let report = app.report();
        assert_eq!(report.rtts_ms.len(), 20);
        assert_eq!(report.lost, 0);
        let summary = report.summary();
        assert!(
            summary.mean < 2.0,
            "LAN physical RTT should be sub-2ms, got {}",
            summary.mean
        );
        assert!(summary.mean > 0.0);
    }

    #[test]
    fn ping_to_unreachable_host_reports_losses() {
        let mut net = Network::new(12);
        let (a, _b, _, _) = lan_pair(&mut net);
        let app = PingApp::new(Ipv4Addr::new(99, 99, 99, 99), 3, Duration::from_millis(5))
            .with_timeout(Duration::from_millis(100));
        net.set_agent(
            a,
            Box::new(PlainHostAgent::new(net.host(a).addr, Box::new(app))),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(2));
        let agent = sim.agent_as::<PlainHostAgent>(a).unwrap();
        let app = agent.app_as::<PingApp>().unwrap();
        assert!(app.finished());
        assert_eq!(app.report().lost, 3);
        assert!(app.report().rtts_ms.is_empty());
    }
}
