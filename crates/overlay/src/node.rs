//! The Brunet-like overlay node: connection management, greedy structured routing,
//! decentralized join/leave handling, NAT-traversing link establishment, Kleinberg
//! shortcuts and a simple DHT.
//!
//! The node is a pure state machine: the host agent that embeds it feeds it
//! incoming link messages ([`OverlayNode::on_message`]) and periodic ticks
//! ([`OverlayNode::on_tick`]), then drains [`OverlayNode::take_outbox`] for
//! messages to hand to the physical transport and [`OverlayNode::take_delivered`]
//! for payloads addressed to this node (IPOP picks up tunnelled IP packets there).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime, StreamRng};

use crate::address::{Address, Distance};
use crate::dht::{
    apply_record_copy, sync_compare, sync_digest_entry, sync_value_hash, DhtConfig, DhtRecord,
    DhtStore, SoftStateStore, SyncAction, SyncDigestEntry,
};
use crate::packets::{
    ConnectionKind, DeliveryMode, Endpoint, LinkMessage, RoutedPacket, RoutedPayload,
};
use crate::pubsub::{decode_subscriber_set, encode_subscriber_set, plan_fanout};
use crate::table::{Connection, ConnectionState, ConnectionTable};
use crate::vstream::{StreamEvent, VStreams};

/// Configuration of an overlay node.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// This node's 160-bit address (for IPOP: SHA-1 of its virtual IP).
    pub address: Address,
    /// The local physical endpoint the transport listens on.
    pub local_endpoint: Endpoint,
    /// Physical endpoints of bootstrap nodes already in the overlay.
    pub bootstrap: Vec<Endpoint>,
    /// Desired number of structured-near connections per ring side.
    pub near_per_side: usize,
    /// Maximum number of Kleinberg shortcut connections.
    pub max_shortcuts: usize,
    /// Whether to build shortcut connections at all (ablation switch).
    pub shortcuts_enabled: bool,
    /// Interval between maintenance ticks (ring repair, shortcut formation).
    pub maintenance_interval: Duration,
    /// Idle interval after which a keep-alive ping is sent on an edge.
    pub ping_interval: Duration,
    /// Idle interval after which an edge is considered dead and removed
    /// (the slow backstop; the link monitor below detects crashed peers in
    /// seconds).
    pub connection_timeout: Duration,
    /// Fast dead-edge detection: probe established edges that have gone
    /// silent and drop them after a few missed acks, so routing stops
    /// forwarding packets into a crashed hop long before
    /// [`OverlayConfig::connection_timeout`].
    pub link_monitor: bool,
    /// Idle interval after which the link monitor probes an edge. Healthy
    /// edges hear gossip every maintenance tick, so probes only flow to
    /// peers that actually went silent.
    pub probe_interval: Duration,
    /// Consecutive unanswered probes before an edge is declared dead (used
    /// when [`OverlayConfig::phi_accrual`] is off).
    pub probe_failure_limit: u32,
    /// Phi-accrual suspicion: weigh consecutive probe misses by the edge's
    /// observed loss rate instead of counting them against a fixed limit. A
    /// clean edge still dies after 3 misses, but an edge that routinely
    /// drops probes (1–5% loss) needs proportionally more consecutive
    /// misses — eliminating false dead-edge verdicts on lossy links while a
    /// real crash is still detected in seconds.
    pub phi_accrual: bool,
    /// Suspicion threshold: an edge is declared dead when
    /// `φ = misses × -log₁₀(loss estimate)` reaches this value. The default
    /// (6.0) reproduces the 3-miss behaviour exactly on clean edges (whose
    /// loss estimate is floored at 1%, worth φ = 2 per miss).
    pub phi_threshold: f64,
    /// How often a node with no live edge to any bootstrap endpoint re-sends
    /// hellos there. With fast dead-edge detection a long partition scrubs
    /// each side's knowledge of the other within seconds; this heartbeat is
    /// what re-merges the sub-rings after the partition heals (the hellos
    /// are simply lost while it lasts).
    pub bootstrap_retry_interval: Duration,
    /// Hop budget stamped on packets this node originates. The wire default
    /// (32) suits rings up to ~10k nodes; greedy tail paths at 100k need
    /// more, so scale deployments raise it to a few multiples of `log₂N`.
    pub packet_ttl: u8,
    /// Maximum out-degree of the pub/sub relay tree: a topic root (and each
    /// relay below it) splits the subscribers it is responsible for into at
    /// most this many delegated chunks per publish. Higher values shorten the
    /// tree (lower fan-out latency) at the cost of more concurrent sends per
    /// node.
    pub pubsub_fanout: usize,
    /// Configuration of the replicated soft-state DHT.
    pub dht: DhtConfig,
}

impl OverlayConfig {
    /// Reasonable defaults for a node at `address` listening on `local_endpoint`.
    pub fn new(address: Address, local_endpoint: Endpoint) -> Self {
        OverlayConfig {
            address,
            local_endpoint,
            bootstrap: Vec::new(),
            near_per_side: 2,
            max_shortcuts: 4,
            shortcuts_enabled: true,
            maintenance_interval: Duration::from_millis(500),
            ping_interval: Duration::from_secs(10),
            connection_timeout: Duration::from_secs(45),
            link_monitor: true,
            probe_interval: Duration::from_secs(1),
            probe_failure_limit: 3,
            phi_accrual: true,
            phi_threshold: 6.0,
            bootstrap_retry_interval: Duration::from_secs(30),
            packet_ttl: 32,
            pubsub_fanout: 4,
            dht: DhtConfig::default(),
        }
    }

    /// Builder: set bootstrap endpoints.
    pub fn with_bootstrap(mut self, bootstrap: Vec<Endpoint>) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Builder: disable shortcut connections (used by the ablation experiment).
    pub fn without_shortcuts(mut self) -> Self {
        self.shortcuts_enabled = false;
        self
    }

    /// Builder: set the DHT replication factor (total copies per record).
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.dht.replication = replication.max(1);
        self
    }

    /// Builder: fall back to single-node DHT reads and unacknowledged creates
    /// (the pre-quorum behaviour; ablation switch).
    pub fn without_dht_quorum(mut self) -> Self {
        self.dht.quorum = false;
        self
    }

    /// Builder: disable fast dead-edge detection — crashed peers linger in
    /// the routing table until [`OverlayConfig::connection_timeout`] (the
    /// pre-link-monitor behaviour; ablation switch).
    pub fn without_link_monitor(mut self) -> Self {
        self.link_monitor = false;
        self
    }

    /// Builder: set the idle interval before the link monitor probes an edge.
    pub fn with_probe_interval(mut self, interval: Duration) -> Self {
        self.probe_interval = interval;
        self
    }

    /// Builder: fall back to the fixed consecutive-miss limit instead of
    /// phi-accrual suspicion (the pre-phi behaviour; ablation switch).
    pub fn without_phi_accrual(mut self) -> Self {
        self.phi_accrual = false;
        self
    }

    /// Builder: set the phi-accrual suspicion threshold.
    pub fn with_phi_threshold(mut self, threshold: f64) -> Self {
        self.phi_threshold = threshold;
        self
    }

    /// Builder: disable the anti-entropy sweep — replica sets reconcile only
    /// opportunistically on reads and renewals (ablation switch).
    pub fn without_anti_entropy(mut self) -> Self {
        self.dht.sweep = false;
        self
    }

    /// Builder: set the interval between anti-entropy sweeps.
    pub fn with_sweep_interval(mut self, interval: Duration) -> Self {
        self.dht.sweep_interval = interval;
        self
    }

    /// Builder: set the shortcut (Far connection) budget.
    pub fn with_max_shortcuts(mut self, max_shortcuts: usize) -> Self {
        self.max_shortcuts = max_shortcuts;
        self
    }

    /// Builder: set the number of structured-near neighbours kept per side.
    pub fn with_near_per_side(mut self, near_per_side: usize) -> Self {
        self.near_per_side = near_per_side.max(1);
        self
    }

    /// Builder: set the interval between maintenance ticks.
    pub fn with_maintenance_interval(mut self, interval: Duration) -> Self {
        self.maintenance_interval = interval;
        self
    }

    /// Builder: set the hop budget for packets this node originates.
    pub fn with_packet_ttl(mut self, ttl: u8) -> Self {
        self.packet_ttl = ttl.max(1);
        self
    }

    /// Builder: set the maximum out-degree of the pub/sub relay tree.
    pub fn with_pubsub_fanout(mut self, fanout: usize) -> Self {
        self.pubsub_fanout = fanout.max(1);
        self
    }
}

/// Counters describing a node's routing activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverlayStats {
    /// Routed packets originated by this node.
    pub originated: u64,
    /// Routed packets forwarded on behalf of other nodes.
    pub forwarded: u64,
    /// Routed packets delivered locally.
    pub delivered: u64,
    /// Routed packets dropped because the TTL expired.
    pub dropped_ttl: u64,
    /// Exact-mode packets dropped because this node was closest but not the target.
    pub dropped_no_target: u64,
    /// Maintenance traffic (connect requests/responses) that ended at a node
    /// other than its target — routine while the ring is still converging.
    pub dropped_maintenance: u64,
    /// Link messages sent.
    pub link_tx: u64,
    /// Link messages received.
    pub link_rx: u64,
    /// DHT records currently stored on this node (gauge).
    pub dht_records: u64,
    /// Bytes of DHT values currently stored on this node (gauge).
    pub dht_bytes: u64,
    /// Stored records this node holds as a replica for the ring owner (gauge).
    pub dht_replicas: u64,
    /// Soft-state refresh puts sent for records this node publishes.
    pub dht_refreshes: u64,
    /// Stored records dropped because their TTL expired.
    pub dht_expired: u64,
    /// Quorum writes this node coordinated (creates fanned out for acks).
    pub dht_quorum_writes: u64,
    /// Quorum writes that failed to reach a majority before the timeout (the
    /// claim was rejected so the claimant retries elsewhere).
    pub dht_quorum_write_timeouts: u64,
    /// Quorum reads this node coordinated (replica sets polled).
    pub dht_quorum_reads: u64,
    /// Quorum reads concluded early because too few replicas answered in time.
    pub dht_quorum_read_timeouts: u64,
    /// Stale or missing copies repaired after a quorum read.
    pub dht_read_repairs: u64,
    /// Lease renewals whose `DhtCreateReply` never arrived within the renewal
    /// timeout (alarm: the renewal was re-issued instead of silently dropped).
    pub dht_renewal_timeouts: u64,
    /// Claimed leases lost because a renewal found a conflicting record (e.g.
    /// the other side of a healed partition won the key).
    pub dht_leases_lost: u64,
    /// Link-monitor liveness probes sent on silent edges.
    pub link_probes_sent: u64,
    /// Probes whose ack missed the adaptive deadline.
    pub link_probe_timeouts: u64,
    /// Edges declared dead by the link monitor (consecutive probe misses) and
    /// removed from the routing table — long before the connection timeout.
    pub dead_edges_detected: u64,
    /// Anti-entropy digest messages sent (owner→replica and publisher→owner).
    pub dht_sync_digests: u64,
    /// Records re-sent because a digest receiver pulled them (they were
    /// missing or stale at the other end).
    pub dht_sync_pulls: u64,
    /// Fresher local copies pushed back at a digest sender.
    pub dht_sync_pushes: u64,
    /// Shortcut target draws rejected because the predicted responder was
    /// already a connected peer (the draw was retried at no protocol cost).
    pub shortcut_redraws: u64,
    /// Inbound datagrams/frames dropped at the overlay ingress because they
    /// failed to decode as a link message (truncated or corrupted in flight,
    /// or garbage from a misbehaving sender).
    pub malformed_dropped: u64,
    /// Probe deadlines re-armed instead of counted as misses because this
    /// node itself stalled past them (no pump tick ran while the deadline
    /// expired) — self-inflicted silence is not evidence against the peer.
    pub link_probe_deadline_clamps: u64,
    /// Pub/sub subscribes (and soft-state renewals) this node merged into a
    /// topic record as the topic's root.
    pub pubsub_subscriptions: u64,
    /// Pub/sub publishes this node fanned out as the topic's root.
    pub pubsub_publishes: u64,
    /// `PubSubDeliver` packets originated here (root fan-out plus relay
    /// re-delegation).
    pub pubsub_fanout_sent: u64,
    /// Pub/sub messages delivered to this node's local subscriber inbox.
    pub pubsub_delivered: u64,
    /// Deliver packets whose delegated relay list this node re-fanned onward.
    pub pubsub_relayed: u64,
    /// Dead subscribers removed from owned topic records when the link
    /// monitor declared their edge dead (receipt-driven cleanup).
    pub pubsub_pruned: u64,
    /// Delegations salvaged at the ring-closest node after their chunk head
    /// left the overlay — the rest of the chunk still gets the message, only
    /// the departed head's own copy is lost.
    pub pubsub_salvaged: u64,
    /// Publishes this node nacked as a topic root that had no subscriber-set
    /// record yet (re-home window): the publisher retries instead of losing
    /// the message.
    pub pubsub_nacks_sent: u64,
    /// Retryable publish nacks received back from a topic root.
    pub pubsub_nacks_received: u64,
    /// Publishes re-routed after a retryable nack.
    pub pubsub_publish_retries: u64,
    /// Publishes abandoned after exhausting the nack-retry budget.
    pub pubsub_publish_failures: u64,
    /// Virtual streams opened from this node (`stream_connect`).
    pub stream_opened: u64,
    /// Virtual streams accepted from remote SYNs.
    pub stream_accepted: u64,
    /// Stream DATA segments sent (first transmissions).
    pub stream_data_sent: u64,
    /// Stream DATA segments received in order and delivered.
    pub stream_data_received: u64,
    /// Stream frames re-sent on RTO expiry.
    pub stream_retransmits: u64,
    /// Streams that exhausted their retransmit budget.
    pub stream_failed: u64,
    /// Streams closed cleanly (either side's FIN acknowledged).
    pub stream_closed: u64,
    /// Stream frames for streams this node no longer (or never) tracked.
    pub stream_orphan_frames: u64,
}

/// A topic this node subscribes to: the soft-state TTL it asked for and when
/// the subscription was last (re-)announced. Renewed at TTL/2 like any other
/// soft-state publication.
struct PubSubSubscription {
    ttl: Duration,
    last_renew: SimTime,
}

/// A publish this node originated, retained until the retry budget would be
/// pointless: a topic root caught mid-re-home answers a retryable
/// [`RoutedPayload::PubSubNack`] instead of dropping the message, and the
/// publisher re-routes it from here once the backoff elapses.
struct PendingPublish {
    topic: Address,
    payload: Bytes,
    /// Nack-triggered retries so far.
    attempts: u32,
    /// When the next retry fires; `None` while the publish is in flight.
    retry_at: Option<SimTime>,
}

/// Bound on retained publishes: old entries beyond this are evicted oldest
/// first (a fan-out is not acknowledged, so "still pending" only means "not
/// yet nacked and not yet evicted").
const MAX_PENDING_PUBLISHES: usize = 64;

/// Nack-triggered retries before a publish is abandoned (counted in
/// [`OverlayStats::pubsub_publish_failures`]).
const MAX_PUBLISH_RETRIES: u32 = 8;

/// Base backoff between publish retries, doubled per attempt (capped).
const PUBLISH_RETRY_BACKOFF: Duration = Duration::from_millis(250);

/// Token used by internally originated quorum creates (pub/sub topic-record
/// rewrites): [`OverlayNode::send_create_reply`] suppresses the reply for it.
/// Real create tokens come from `fresh_token`, which starts at 1.
const INTERNAL_QUORUM_TOKEN: u64 = 0;

struct PendingLink {
    kind: ConnectionKind,
    started: SimTime,
}

/// Link-monitor state of one established edge: an RTT estimator and the
/// probe in flight. An edge accumulating [`OverlayConfig::probe_failure_limit`]
/// consecutive probe misses is declared dead and dropped from the routing
/// table, so packets stop being forwarded into a crashed hop within seconds
/// instead of the 45 s connection timeout.
#[derive(Default)]
struct EdgeHealth {
    /// Smoothed RTT in nanoseconds (RFC 6298-style), `None` before the first
    /// sample.
    srtt_ns: Option<u64>,
    /// RTT variance estimate in nanoseconds.
    rttvar_ns: u64,
    /// Outstanding probe: `(nonce, sent_at, deadline)`.
    outstanding: Option<(u64, SimTime, SimTime)>,
    /// Consecutive probes that missed their deadline.
    failures: u32,
    /// Sliding window of recent probe outcomes, newest at bit 0 (1 = miss).
    /// This is the per-edge loss history the phi estimator reads.
    window: u64,
    /// Number of valid bits in `window` (saturates at 64).
    window_len: u32,
    /// Suspicion added per consecutive miss, frozen when the current miss
    /// episode started (`failures` 0 → 1). Freezing keeps the misses of a
    /// genuine crash from inflating the loss estimate mid-episode and
    /// stalling their own verdict.
    phi_per_miss: f64,
}

impl EdgeHealth {
    /// Record one probe outcome in the sliding loss window.
    fn record_outcome(&mut self, missed: bool) {
        self.window = (self.window << 1) | u64::from(missed);
        self.window_len = (self.window_len + 1).min(64);
    }

    /// The edge's estimated probe-loss probability, clamped into
    /// `[PHI_LOSS_FLOOR, PHI_LOSS_CAP]`. With no history yet, the floor —
    /// i.e. assume a clean link until misses prove otherwise.
    fn loss_estimate(&self) -> f64 {
        if self.window_len == 0 {
            return PHI_LOSS_FLOOR;
        }
        let p = f64::from(self.window.count_ones()) / f64::from(self.window_len);
        p.clamp(PHI_LOSS_FLOOR, PHI_LOSS_CAP)
    }

    /// Current suspicion level: the probability that a *live* edge with this
    /// loss rate misses `failures` consecutive probes is `p^failures`, and
    /// φ = -log₁₀ of that — so φ = failures × -log₁₀(p).
    fn phi(&self) -> f64 {
        f64::from(self.failures) * self.phi_per_miss
    }
}

/// Probe deadline bounds: the adaptive timeout (`srtt + 4·rttvar`, doubled
/// per consecutive failure) is clamped into this range; before any RTT
/// sample exists the initial timeout applies.
const PROBE_TIMEOUT_MIN: Duration = Duration::from_millis(250);
const PROBE_TIMEOUT_MAX: Duration = Duration::from_secs(3);
const PROBE_TIMEOUT_INITIAL: Duration = Duration::from_secs(1);

/// Bounds on the phi estimator's per-edge loss estimate. The floor makes a
/// clean edge's suspicion grow at -log₁₀(0.01) = 2 per miss — with the
/// default threshold of 6, exactly the historical 3-miss verdict. The cap
/// keeps an extremely lossy edge (> 10% probe loss) from becoming
/// effectively undroppable.
const PHI_LOSS_FLOOR: f64 = 0.01;
const PHI_LOSS_CAP: f64 = 0.1;

/// Cap on digest entries per anti-entropy message; larger key sets are
/// chunked across several digests.
const SYNC_DIGEST_CHUNK: usize = 64;

/// A record this node publishes and keeps alive by renewing at TTL/2
/// (DHCP-style lease renewal — paper Section III-E's soft-state mappings).
///
/// Two renewal modes exist. Plain publications (Brunet-ARP mappings, name
/// records) re-put: last-writer-wins overwrite is exactly what VM migration
/// needs. Claimed publications (successful `DhtCreate`s, i.e. address leases)
/// renew with another `DhtCreate`: the owner extends a record matching our
/// value and rejects a conflicting one, so a claim that lost a healed
/// partition is *discovered* (and surfaced as a lost lease) instead of
/// silently clobbering the winner.
struct Publication {
    value: Bytes,
    ttl: Duration,
    /// Version of the current value; bumped when a re-publish changes it.
    version: u64,
    last_refresh: SimTime,
    /// Renew with create-if-absent-or-match instead of a blind put.
    renew_with_create: bool,
    /// Outstanding renewal create: `(token, issued)`. A renewal whose reply
    /// does not arrive within [`DhtConfig::renewal_timeout`] is re-issued and
    /// counted in [`OverlayStats::dht_renewal_timeouts`].
    renew_inflight: Option<(u64, SimTime)>,
}

/// A quorum write this node is coordinating: the record is stored locally and
/// pushed to the key's replica set with an ack token; the `DhtCreateReply` is
/// sent only once a majority of the copy set (local copy included) holds it.
struct QuorumCreate {
    origin: Address,
    origin_token: u64,
    key: Address,
    value: Bytes,
    /// Version the record was stored and pushed with.
    version: u64,
    /// `None` for a first-time claim (the record was created by this
    /// operation); `Some(expiry)` for a lease renewal, applied to the local
    /// record only once the quorum acks. Only fresh claims are withdrawn on
    /// quorum failure: a failed renewal keeps the coordinator's pre-renewal
    /// expiry, while replicas that stored the extended push before their ack
    /// was lost may keep the longer expiry — soft state that ages out, at
    /// worst occupying the key one extra TTL if the claimant then crashes.
    extends_to: Option<SimTime>,
    /// The replicas the record was pushed to — on failure a fresh claim is
    /// withdrawn from them too (an ack may have been lost after the store).
    targets: Vec<Address>,
    acks_needed: usize,
    acks: usize,
    issued: SimTime,
}

/// A quorum read this node is coordinating: the replica set has been polled
/// and the freshest copy by `(version, expiry)` is returned to the origin once
/// a majority of the copy set answered with at least one live copy in sight
/// (or every poll answered, or the poll timed out). Stale and missing copies
/// discovered along the way are repaired asynchronously. Replica answers are
/// reconstructed as [`DhtRecord`]s so freshness and TTL rules stay the
/// store's own.
struct QuorumRead {
    origin: Address,
    origin_token: u64,
    key: Address,
    /// How many replicas were polled.
    polled: usize,
    replies_needed: usize,
    /// Answers received so far: `(replica, its live copy)`.
    responses: Vec<(Address, Option<DhtRecord>)>,
    issued: SimTime,
}

/// An outstanding `DhtCreate`, remembered so a successful claim turns into a
/// publication (the creator becomes the record's refreshing owner).
struct PendingCreate {
    key: Address,
    value: Bytes,
    ttl: Duration,
    issued: SimTime,
}

/// How long an unanswered `DhtCreate` stays pending before it is forgotten.
/// A reply arriving later is treated as stale and must not turn into a
/// publication — the caller has long since given up on the claim (and, for
/// the DHCP allocator, moved on to a different address).
const PENDING_CREATE_TIMEOUT: Duration = Duration::from_secs(60);

/// Expiry skew tolerated before a quorum read repairs a same-version,
/// same-value copy. A replica's expiry is reconstructed from its remaining
/// TTL at the coordinator, so it arrives inflated by the reply's transit
/// time; genuine renewals differ by at least TTL/2, far above this.
const READ_REPAIR_SLACK: Duration = Duration::from_secs(2);

/// A Brunet-style structured-ring overlay node.
pub struct OverlayNode {
    cfg: OverlayConfig,
    /// Endpoints we advertise: the local endpoint plus any NAT-translated endpoints
    /// peers have observed for us.
    advertised: Vec<Endpoint>,
    table: ConnectionTable,
    outbox: Vec<(Endpoint, LinkMessage)>,
    delivered: VecDeque<RoutedPacket>,
    dht: Box<dyn DhtStore + Send>,
    dht_replies: VecDeque<(u64, Option<Bytes>)>,
    dht_create_replies: VecDeque<(u64, bool, Option<Bytes>)>,
    /// Records this node publishes, keyed by DHT key. `BTreeMap` so the
    /// refresh scan emits messages in a deterministic order.
    published: BTreeMap<Address, Publication>,
    /// Outstanding creates: token → claim. Never iterated, only keyed.
    pending_creates: BTreeMap<u64, PendingCreate>,
    /// Quorum writes this node is coordinating, keyed by ack token. `BTreeMap`
    /// because the timeout sweep iterates it while emitting failure replies.
    pending_quorum_creates: BTreeMap<u64, QuorumCreate>,
    /// Quorum reads this node is coordinating, keyed by poll token. `BTreeMap`
    /// because the timeout sweep iterates it while emitting replies/repairs.
    pending_quorum_reads: BTreeMap<u64, QuorumRead>,
    /// Claimed leases whose renewal found a conflicting record; the embedding
    /// agent drains this and re-allocates.
    lost_leases: VecDeque<Address>,
    pending_links: BTreeMap<u64, PendingLink>,
    /// Link-monitor state per established peer. `BTreeMap` because the probe
    /// scan iterates it while emitting messages.
    edge_health: BTreeMap<Address, EdgeHealth>,
    /// Instant of the next anti-entropy sweep; `None` until the first tick
    /// draws a random initial offset (so a fleet started together does not
    /// sweep in lockstep).
    next_sweep: Option<SimTime>,
    /// True once this node ever held an established edge — an isolated node
    /// that *had* peers must not self-acknowledge quorum writes against a
    /// copy set of one (see [`OverlayNode::commit_create`]).
    ever_connected: bool,
    /// When the bootstrap re-link heartbeat last fired.
    last_bootstrap_probe: SimTime,
    /// When the link monitor last ran. A gap much larger than the
    /// maintenance interval means this node itself stalled (CPU-saturated
    /// host, paused pump): probe deadlines that expired inside the gap are
    /// re-armed instead of counted as misses.
    last_monitor_run: SimTime,
    /// Established-peer snapshot of the last re-replication scan; the scan
    /// only reruns when this set changes (new records and refresh puts
    /// replicate immediately on the store path instead).
    last_replica_peers: Vec<Address>,
    /// Neighbour candidates learned from gossip: address → endpoint. Ordered so
    /// candidate scans (which emit hellos) are deterministic across runs.
    candidates: BTreeMap<Address, Endpoint>,
    /// Topics this node subscribes to, keyed by topic key. `BTreeMap` so the
    /// renewal scan emits subscribes in a deterministic order.
    pubsub_subs: BTreeMap<Address, PubSubSubscription>,
    /// Topic keys this node has served as root for (merged a subscribe or
    /// rewrote the record). Scanned on dead-edge verdicts to prune the dead
    /// peer out of owned subscriber sets; entries fall away once the record
    /// is gone or owned elsewhere.
    pubsub_topics_seen: BTreeSet<Address>,
    /// Pub/sub messages delivered to this node: `(topic key, msg id, body)`.
    pubsub_inbox: VecDeque<(Address, u64, Bytes)>,
    /// Publishes awaiting root confirmation of fan-out, keyed by msg id; a
    /// retryable nack from a re-homing root schedules a re-route here.
    /// Bounded: the oldest entries are evicted past
    /// [`MAX_PENDING_PUBLISHES`].
    pending_publishes: BTreeMap<u64, PendingPublish>,
    /// Insertion order of `pending_publishes` for bounded eviction.
    publish_order: VecDeque<u64>,
    /// The virtual-stream engine (see [`crate::vstream`]).
    vstreams: VStreams,
    next_token: u64,
    rng: StreamRng,
    stats: OverlayStats,
    started: bool,
}

impl OverlayNode {
    /// Create a node (does not contact the network until [`OverlayNode::start`]).
    pub fn new(cfg: OverlayConfig, rng: StreamRng) -> Self {
        let advertised = vec![cfg.local_endpoint];
        OverlayNode {
            cfg,
            advertised,
            table: ConnectionTable::new(),
            outbox: Vec::new(),
            delivered: VecDeque::new(),
            dht: Box::new(SoftStateStore::new()),
            dht_replies: VecDeque::new(),
            dht_create_replies: VecDeque::new(),
            published: BTreeMap::new(),
            pending_creates: BTreeMap::new(),
            pending_quorum_creates: BTreeMap::new(),
            pending_quorum_reads: BTreeMap::new(),
            lost_leases: VecDeque::new(),
            pending_links: BTreeMap::new(),
            edge_health: BTreeMap::new(),
            next_sweep: None,
            ever_connected: false,
            last_bootstrap_probe: SimTime::ZERO,
            last_monitor_run: SimTime::ZERO,
            last_replica_peers: Vec::new(),
            candidates: BTreeMap::new(),
            pubsub_subs: BTreeMap::new(),
            pubsub_topics_seen: BTreeSet::new(),
            pubsub_inbox: VecDeque::new(),
            pending_publishes: BTreeMap::new(),
            publish_order: VecDeque::new(),
            vstreams: VStreams::new(),
            next_token: 1,
            rng,
            stats: OverlayStats::default(),
            started: false,
        }
    }

    /// This node's overlay address.
    pub fn address(&self) -> Address {
        self.cfg.address
    }

    /// The endpoints this node advertises (local plus NAT-observed).
    pub fn advertised_endpoints(&self) -> &[Endpoint] {
        &self.advertised
    }

    /// Routing statistics (the DHT gauges are sampled at call time).
    pub fn stats(&self) -> OverlayStats {
        let mut s = self.stats;
        s.dht_records = self.dht.len() as u64;
        s.dht_bytes = self.dht.stored_bytes() as u64;
        s.dht_replicas = self.dht.replicas_held() as u64;
        let vs = &self.vstreams.stats;
        s.stream_opened = vs.opened;
        s.stream_accepted = vs.accepted;
        s.stream_data_sent = vs.data_sent;
        s.stream_data_received = vs.data_received;
        s.stream_retransmits = vs.retransmits;
        s.stream_failed = vs.failed;
        s.stream_closed = vs.closed;
        s.stream_orphan_frames = vs.orphan_frames;
        s
    }

    /// The node's configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    /// The connection table (read-only).
    pub fn connections(&self) -> &ConnectionTable {
        &self.table
    }

    /// True once at least one edge is established.
    pub fn is_connected(&self) -> bool {
        self.table.established().next().is_some()
    }

    /// Number of entries in the local DHT store.
    pub fn dht_stored(&self) -> usize {
        self.dht.len()
    }

    /// Borrow the local DHT store (read-only; for diagnostics and tests).
    pub fn dht_store(&self) -> &dyn DhtStore {
        self.dht.as_ref()
    }

    // ------------------------------------------------------------------ control

    /// Begin joining the overlay: contact the bootstrap endpoints.
    pub fn start(&mut self, now: SimTime) {
        self.started = true;
        for ep in self.cfg.bootstrap.clone() {
            self.send_hello(now, ep, ConnectionKind::Leaf);
        }
    }

    /// Install an already-established edge without a handshake, marking the
    /// node started and connected. Scale harnesses use this to warm-start a
    /// converged ring (seeding both directions of each Near edge) so 10k+
    /// node runs skip the bootstrap phase; protocol-level convergence stays
    /// covered by the smaller end-to-end tests.
    pub fn seed_connection(
        &mut self,
        now: SimTime,
        peer: Address,
        endpoint: Endpoint,
        kind: ConnectionKind,
    ) {
        debug_assert_ne!(peer, self.cfg.address, "cannot seed an edge to self");
        self.started = true;
        self.ever_connected = true;
        self.table.upsert(Connection {
            peer,
            endpoint,
            kind,
            state: ConnectionState::Established,
            last_heard: now,
            last_ping_sent: now,
        });
    }

    /// Gracefully leave: hand every stored DHT record off to the ring
    /// neighbours closest to its key, then tell every peer the edges are going
    /// away. Handoff runs before the Close messages so receivers still accept
    /// the records while the edges exist.
    pub fn leave(&mut self, now: SimTime) {
        // Withdraw our subscriptions while the routes still exist, so topic
        // roots stop fanning out to a node that is gone.
        let topics: Vec<Address> = self.pubsub_subs.keys().copied().collect();
        for topic in topics {
            self.pubsub_unsubscribe(now, topic);
        }
        let replication = self.cfg.dht.replication;
        for key in self.dht.keys() {
            let Some(rec) = self.dht.get(&key) else {
                continue;
            };
            if rec.expired(now) {
                continue;
            }
            let value = rec.value.clone();
            let ttl_ms = rec.remaining_ttl_ms(now);
            let version = rec.version;
            // Unconditionally push to the peers closest to the key (at least
            // one even with replication disabled): the nearest of them becomes
            // the key's owner once we are gone, and idempotent overwrites of
            // existing replicas are harmless.
            let targets = self.replica_targets(&key, replication.saturating_sub(1).max(1));
            for peer in targets {
                let pkt = RoutedPacket::new(
                    self.cfg.address,
                    peer,
                    DeliveryMode::Exact,
                    RoutedPayload::DhtReplicate {
                        key,
                        value: value.clone(),
                        ttl_ms,
                        version,
                        token: 0,
                    },
                );
                self.stats.originated += 1;
                self.route(now, pkt);
            }
            self.dht.remove(&key);
        }
        let peers: Vec<(Endpoint, Address)> =
            self.table.iter().map(|c| (c.endpoint, c.peer)).collect();
        for (ep, _peer) in peers {
            self.push_out(
                ep,
                LinkMessage::Close {
                    from: self.cfg.address,
                },
            );
        }
        self.started = false;
    }

    /// Messages queued for the physical transport: `(destination endpoint, message)`.
    pub fn take_outbox(&mut self) -> Vec<(Endpoint, LinkMessage)> {
        std::mem::take(&mut self.outbox)
    }

    /// Routed packets delivered to this node (IP tunnel payloads and the like).
    pub fn take_delivered(&mut self) -> Vec<RoutedPacket> {
        self.delivered.drain(..).collect()
    }

    /// Pub/sub messages delivered to this node: `(topic key, msg id, body)`.
    pub fn take_pubsub_delivered(&mut self) -> Vec<(Address, u64, Bytes)> {
        self.pubsub_inbox.drain(..).collect()
    }

    /// Completed DHT lookups: `(token, value)`.
    pub fn take_dht_replies(&mut self) -> Vec<(u64, Option<Bytes>)> {
        self.dht_replies.drain(..).collect()
    }

    /// Completed DHT creates: `(token, created, existing value on conflict)`.
    pub fn take_dht_create_replies(&mut self) -> Vec<(u64, bool, Option<Bytes>)> {
        self.dht_create_replies.drain(..).collect()
    }

    /// Keys of claimed leases this node lost: a TTL/2 renewal came back
    /// `created == false`, meaning a conflicting record owns the key (typical
    /// after a healed partition). The publication has already been dropped;
    /// the embedding agent re-allocates.
    pub fn take_lost_leases(&mut self) -> Vec<Address> {
        self.lost_leases.drain(..).collect()
    }

    // ---------------------------------------------------------------- app sends

    /// Tunnel a serialized virtual IP packet to the node owning `dst`.
    pub fn send_ip(
        &mut self,
        now: SimTime,
        dst: Address,
        packet_bytes: impl Into<ipop_packet::Bytes>,
    ) {
        let pkt = RoutedPacket::new(
            self.cfg.address,
            dst,
            DeliveryMode::Exact,
            RoutedPayload::IpTunnel(packet_bytes.into()),
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    /// Store `value` at the node closest to `key` with the default TTL, and
    /// keep it alive: the record is registered locally and re-put at TTL/2
    /// until [`OverlayNode::dht_unpublish`] or [`OverlayNode::dht_remove`].
    pub fn dht_put(&mut self, now: SimTime, key: Address, value: impl Into<Bytes>) {
        let ttl = self.cfg.dht.default_ttl;
        self.dht_put_ttl(now, key, value, ttl);
    }

    /// [`OverlayNode::dht_put`] with an explicit soft-state TTL.
    pub fn dht_put_ttl(
        &mut self,
        now: SimTime,
        key: Address,
        value: impl Into<Bytes>,
        ttl: Duration,
    ) {
        let value = value.into();
        // Re-publishing a different value under the same key (a Brunet-ARP
        // mapping migrating to this host) bumps the version so the new value
        // supersedes the old one's replicas everywhere.
        let version = match self.published.get(&key) {
            Some(p) if p.value == value => p.version,
            Some(p) => (p.version + 1).max(Self::version_for(now)),
            None => Self::version_for(now),
        };
        self.published.insert(
            key,
            Publication {
                value: value.clone(),
                ttl,
                version,
                last_refresh: now,
                renew_with_create: false,
                renew_inflight: None,
            },
        );
        self.send_put(now, key, value, ttl, version);
    }

    /// Atomically create the record under `key` if no live record exists
    /// (create-if-absent, the allocator's claim primitive). The outcome
    /// arrives via [`OverlayNode::take_dht_create_replies`] with the returned
    /// token; on success this node becomes the record's publisher and renews
    /// it at TTL/2 like a put.
    pub fn dht_create(
        &mut self,
        now: SimTime,
        key: Address,
        value: impl Into<Bytes>,
        ttl: Duration,
    ) -> u64 {
        let value = value.into();
        let token = self.fresh_token();
        self.pending_creates.insert(
            token,
            PendingCreate {
                key,
                value: value.clone(),
                ttl,
                issued: now,
            },
        );
        let ttl_ms = ttl.as_nanos() / 1_000_000;
        let pkt = RoutedPacket::new(
            self.cfg.address,
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtCreate {
                key,
                value,
                ttl_ms,
                token,
            },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
        token
    }

    /// Request the value stored under `key`; the reply arrives via
    /// [`OverlayNode::take_dht_replies`] with the returned token.
    pub fn dht_get(&mut self, now: SimTime, key: Address) -> u64 {
        let token = self.fresh_token();
        let pkt = RoutedPacket::new(
            self.cfg.address,
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtGet { key, token },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
        token
    }

    /// Delete the record under `key` (lease release) and stop refreshing it.
    pub fn dht_remove(&mut self, now: SimTime, key: Address) {
        self.published.remove(&key);
        let pkt = RoutedPacket::new(
            self.cfg.address,
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtRemove { key },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    /// Stop refreshing the record under `key` without deleting it from the
    /// DHT (it ages out one TTL later).
    pub fn dht_unpublish(&mut self, key: &Address) {
        self.published.remove(key);
    }

    /// Abandon an outstanding [`OverlayNode::dht_create`]: a reply that
    /// arrives after this (e.g. delayed past the caller's claim timeout) is
    /// still surfaced, but no longer turns the claim into a refreshed
    /// publication this node would renew forever.
    pub fn dht_cancel_create(&mut self, token: u64) {
        self.pending_creates.remove(&token);
    }

    fn send_put(&mut self, now: SimTime, key: Address, value: Bytes, ttl: Duration, version: u64) {
        let ttl_ms = ttl.as_nanos() / 1_000_000;
        let pkt = RoutedPacket::new(
            self.cfg.address,
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtPut {
                key,
                value,
                ttl_ms,
                version,
            },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    // ------------------------------------------------------------------ pub/sub

    /// Subscribe to the topic at `topic` (see [`crate::pubsub::topic_key`])
    /// with soft-state lifetime `ttl`. The subscription is announced now and
    /// renewed at TTL/2 until [`OverlayNode::pubsub_unsubscribe`]; delivered
    /// messages arrive via [`OverlayNode::take_pubsub_delivered`].
    pub fn pubsub_subscribe(&mut self, now: SimTime, topic: Address, ttl: Duration) {
        self.pubsub_subs.insert(
            topic,
            PubSubSubscription {
                ttl,
                last_renew: now,
            },
        );
        self.send_subscribe(now, topic, ttl);
    }

    /// Leave the topic: stop renewing and ask the root to drop this node from
    /// the subscriber set immediately.
    pub fn pubsub_unsubscribe(&mut self, now: SimTime, topic: Address) {
        self.pubsub_subs.remove(&topic);
        let pkt = RoutedPacket::new(
            self.cfg.address,
            topic,
            DeliveryMode::Closest,
            RoutedPayload::PubSubUnsubscribe {
                topic,
                subscriber: self.cfg.address,
            },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    /// Publish `payload` to the topic: the message routes to the topic root,
    /// which fans it out to every live subscriber. Returns the message id
    /// echoed in every delivery (latency bookkeeping for workloads).
    pub fn pubsub_publish(
        &mut self,
        now: SimTime,
        topic: Address,
        payload: impl Into<Bytes>,
    ) -> u64 {
        let msg_id = self.rng.next_u64();
        let payload = payload.into();
        // Retain the message until the root either fans it out (no nack ever
        // comes back; the entry ages out of the bounded table) or nacks it
        // (re-home window: the retry re-routes to the key's current owner).
        self.pending_publishes.insert(
            msg_id,
            PendingPublish {
                topic,
                payload: payload.clone(),
                attempts: 0,
                retry_at: None,
            },
        );
        self.publish_order.push_back(msg_id);
        while self.pending_publishes.len() > MAX_PENDING_PUBLISHES {
            match self.publish_order.pop_front() {
                Some(old) => {
                    self.pending_publishes.remove(&old);
                }
                None => break,
            }
        }
        self.send_publish(now, topic, msg_id, payload);
        msg_id
    }

    /// Route one `PubSubPublish` frame towards the topic key's current owner.
    fn send_publish(&mut self, now: SimTime, topic: Address, msg_id: u64, payload: Bytes) {
        let pkt = RoutedPacket::new(
            self.cfg.address,
            topic,
            DeliveryMode::Closest,
            RoutedPayload::PubSubPublish {
                topic,
                msg_id,
                payload,
            },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    /// A topic root nacked one of our publishes (it had no subscriber-set
    /// record — typically mid-re-home). Schedule a backed-off retry; after
    /// [`MAX_PUBLISH_RETRIES`] the publish is abandoned and counted.
    fn on_pubsub_nack(&mut self, now: SimTime, msg_id: u64) {
        let Some(p) = self.pending_publishes.get_mut(&msg_id) else {
            return; // evicted, already failed, or not ours
        };
        self.stats.pubsub_nacks_received += 1;
        if p.attempts >= MAX_PUBLISH_RETRIES {
            self.pending_publishes.remove(&msg_id);
            self.publish_order.retain(|id| *id != msg_id);
            self.stats.pubsub_publish_failures += 1;
            return;
        }
        let backoff = Duration::from_nanos(PUBLISH_RETRY_BACKOFF.as_nanos() << p.attempts.min(4));
        p.retry_at = Some(now + backoff);
    }

    fn send_subscribe(&mut self, now: SimTime, topic: Address, ttl: Duration) {
        let ttl_ms = ttl.as_nanos() / 1_000_000;
        let pkt = RoutedPacket::new(
            self.cfg.address,
            topic,
            DeliveryMode::Closest,
            RoutedPayload::PubSubSubscribe {
                topic,
                subscriber: self.cfg.address,
                ttl_ms,
            },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    /// Root-side view of a topic record: the live (unexpired) subscriber
    /// entries, in ring order. Missing, expired or undecodable records read
    /// as empty.
    fn pubsub_live_entries(&self, now: SimTime, topic: &Address) -> Vec<(Address, u64)> {
        let now_ms = now.as_nanos() / 1_000_000;
        let Some(rec) = self.dht.get(topic).filter(|rec| !rec.expired(now)) else {
            return Vec::new();
        };
        let Ok(mut entries) = decode_subscriber_set(&rec.value) else {
            return Vec::new();
        };
        entries.retain(|(_, expires_ms)| *expires_ms > now_ms);
        entries
    }

    /// Root-side rewrite of a topic record after a membership change. An
    /// empty set deletes the record (propagating the removal to replicas,
    /// like a `DhtRemove`); otherwise the record is re-stored strictly above
    /// the previous version — so replicas accept the rewrite — with a TTL
    /// covering the longest-lived entry, and re-replicated.
    fn pubsub_store_entries(&mut self, now: SimTime, topic: Address, entries: &[(Address, u64)]) {
        if entries.is_empty() {
            self.pubsub_topics_seen.remove(&topic);
            if let Some(rec) = self.dht.remove(&topic) {
                for peer in rec.replicated_to {
                    let fwd = RoutedPacket::new(
                        self.cfg.address,
                        peer,
                        DeliveryMode::Exact,
                        RoutedPayload::DhtRemove { key: topic },
                    );
                    self.stats.originated += 1;
                    self.route(now, fwd);
                }
            }
            return;
        }
        let now_ms = now.as_nanos() / 1_000_000;
        let ttl_ms = entries
            .iter()
            .map(|(_, expires_ms)| expires_ms.saturating_sub(now_ms))
            .max()
            .unwrap_or(1)
            .max(1);
        let version = match self.dht.get(&topic).filter(|rec| !rec.expired(now)) {
            Some(rec) => (rec.version + 1).max(Self::version_for(now)),
            None => Self::version_for(now),
        };
        self.pubsub_topics_seen.insert(topic);
        let value = encode_subscriber_set(entries);
        self.store_record(now, topic, value.clone(), ttl_ms, false, version);
        // Push the rewrite through the quorum create path — the same conflict
        // rules as DHCP lease claims — instead of fire-and-forget
        // replication. During a root re-home the *old* root's replicas may
        // hold the new root's fresher record; their `stored: false` acks
        // starve the quorum and the stale rewrite is withdrawn (from this
        // store and any replica that took it) rather than resurrected as a
        // ghost subscriber set. The sentinel token suppresses the
        // `DhtCreateReply` no caller is waiting for.
        self.commit_create(
            now,
            topic,
            value,
            ttl_ms,
            version,
            INTERNAL_QUORUM_TOKEN,
            self.cfg.address,
            None,
        );
    }

    /// Send one relay-tree level: split `recipients` into at most
    /// `pubsub_fanout` chunks and deliver to each chunk head, delegating the
    /// rest of its chunk. The body `Bytes` is shared across every copy — the
    /// fan-out never re-encodes or re-copies the message itself.
    fn pubsub_fan_out(
        &mut self,
        now: SimTime,
        topic: Address,
        msg_id: u64,
        payload: &Bytes,
        recipients: &[Address],
    ) {
        for (head, relay_to) in plan_fanout(recipients, self.cfg.pubsub_fanout) {
            let pkt = RoutedPacket::new(
                self.cfg.address,
                head,
                DeliveryMode::Exact,
                RoutedPayload::PubSubDeliver {
                    topic,
                    msg_id,
                    relay_to,
                    payload: payload.clone(),
                },
            );
            self.stats.originated += 1;
            self.stats.pubsub_fanout_sent += 1;
            self.route(now, pkt);
        }
    }

    /// Renew soft-state subscriptions at TTL/2 (run from the maintenance
    /// tick). The re-sent subscribe also re-homes the subscription after a
    /// root crash: it routes to whichever node owns the topic key *now*.
    fn pubsub_tick(&mut self, now: SimTime) {
        let due: Vec<(Address, Duration)> = self
            .pubsub_subs
            .iter()
            .filter(|(_, s)| now.saturating_since(s.last_renew) >= s.ttl / 2)
            .map(|(topic, s)| (*topic, s.ttl))
            .collect();
        for (topic, ttl) in due {
            if let Some(s) = self.pubsub_subs.get_mut(&topic) {
                s.last_renew = now;
            }
            self.send_subscribe(now, topic, ttl);
        }
        // Nacked publishes whose backoff elapsed re-route to whoever owns
        // the topic key now.
        let retries: Vec<(u64, Address, Bytes)> = self
            .pending_publishes
            .iter()
            .filter(|(_, p)| p.retry_at.is_some_and(|t| t <= now))
            .map(|(id, p)| (*id, p.topic, p.payload.clone()))
            .collect();
        for (msg_id, topic, payload) in retries {
            if let Some(p) = self.pending_publishes.get_mut(&msg_id) {
                p.attempts += 1;
                p.retry_at = None;
            }
            self.stats.pubsub_publish_retries += 1;
            self.send_publish(now, topic, msg_id, payload);
        }
    }

    /// Receipt-driven cleanup: when the link monitor declares `peer` dead,
    /// drop it from every owned topic record so subsequent publishes stop
    /// fanning out to it — TTL expiry would take half a subscription lifetime
    /// to do the same.
    fn pubsub_prune_subscriber(&mut self, now: SimTime, peer: Address) {
        let topics: Vec<Address> = self.pubsub_topics_seen.iter().copied().collect();
        for topic in topics {
            if self
                .dht
                .get(&topic)
                .filter(|rec| !rec.expired(now))
                .is_none()
            {
                // Record gone (last subscriber left, or aged out): stop
                // scanning this topic on future verdicts.
                self.pubsub_topics_seen.remove(&topic);
                continue;
            }
            if !self.owns_key(&topic) {
                continue;
            }
            let mut entries = self.pubsub_live_entries(now, &topic);
            let before = entries.len();
            entries.retain(|(addr, _)| *addr != peer);
            if entries.len() != before {
                self.stats.pubsub_pruned += 1;
                self.pubsub_store_entries(now, topic, &entries);
            }
        }
    }

    // ---------------------------------------------------------- virtual streams

    /// Open a virtual stream to `remote` and return its id. The stream id
    /// carries an address-order parity bit so simultaneous opens in both
    /// directions can never collide in the peer's `(remote, id)` table.
    pub fn stream_connect(&mut self, now: SimTime, remote: Address) -> u64 {
        let parity = u64::from(self.cfg.address > remote);
        let stream_id = (self.fresh_token() << 1) | parity;
        self.vstreams.connect(now, remote, stream_id);
        self.flush_streams(now);
        stream_id
    }

    /// Queue bytes for ordered, reliable delivery on an open stream. Returns
    /// false if the stream is unknown or already closing.
    pub fn stream_send(
        &mut self,
        now: SimTime,
        remote: Address,
        stream_id: u64,
        data: impl Into<Bytes>,
    ) -> bool {
        let ok = self.vstreams.send(now, remote, stream_id, data.into());
        self.flush_streams(now);
        ok
    }

    /// Close a stream: buffered data still delivers, then a FIN tears the
    /// stream down in both directions.
    pub fn stream_close(&mut self, now: SimTime, remote: Address, stream_id: u64) {
        self.vstreams.close(now, remote, stream_id);
        self.flush_streams(now);
    }

    /// Streams accepted from remote SYNs since the last call:
    /// `(remote, stream id)`.
    pub fn take_stream_accepted(&mut self) -> Vec<(Address, u64)> {
        self.vstreams.take_accepted()
    }

    /// In-order stream payload since the last call: `(remote, stream id,
    /// chunk)`. Chunks are zero-copy views of the received wire frames.
    pub fn take_stream_data(&mut self) -> Vec<(Address, u64, Bytes)> {
        self.vstreams.take_recv()
    }

    /// Stream lifecycle events since the last call.
    pub fn take_stream_events(&mut self) -> Vec<StreamEvent> {
        self.vstreams.take_events()
    }

    /// Route every frame the stream engine queued. Stream frames address a
    /// specific node, so they ride `Exact` delivery like tunnel traffic.
    fn flush_streams(&mut self, now: SimTime) {
        for (remote, payload) in self.vstreams.take_outgoing() {
            let pkt = RoutedPacket::new(self.cfg.address, remote, DeliveryMode::Exact, payload);
            self.stats.originated += 1;
            self.route(now, pkt);
        }
    }

    // ------------------------------------------------------------------- intake

    /// Process a link message received from physical endpoint `from`.
    pub fn on_message(&mut self, now: SimTime, from: Endpoint, msg: LinkMessage) {
        if !self.started {
            // Not yet started, or gracefully departed: the node is not part of
            // the overlay and must not answer handshakes or route traffic.
            return;
        }
        self.stats.link_rx += 1;
        if let Some(peer) = msg.sender() {
            if let Some(conn) = self.table.get_mut(&peer) {
                conn.last_heard = now;
                conn.endpoint = from;
            }
        }
        match msg {
            LinkMessage::Hello {
                from: peer,
                kind,
                observed,
                token,
            } => {
                self.learn_observed(observed);
                if peer != self.cfg.address {
                    let merged = self.merged_kind(&peer, kind);
                    self.table.upsert(Connection {
                        peer,
                        endpoint: from,
                        kind: merged,
                        state: ConnectionState::Established,
                        last_heard: now,
                        last_ping_sent: now,
                    });
                    self.ever_connected = true;
                    let ack = LinkMessage::HelloAck {
                        from: self.cfg.address,
                        kind,
                        observed: from,
                        token,
                    };
                    self.push_out(from, ack);
                }
            }
            LinkMessage::HelloAck {
                from: peer,
                kind,
                observed,
                token,
            } => {
                self.learn_observed(observed);
                self.pending_links.remove(&token);
                if peer != self.cfg.address {
                    let merged = self.merged_kind(&peer, kind);
                    self.table.upsert(Connection {
                        peer,
                        endpoint: from,
                        kind: merged,
                        state: ConnectionState::Established,
                        last_heard: now,
                        last_ping_sent: now,
                    });
                    self.ever_connected = true;
                }
            }
            LinkMessage::Ping { from: peer, nonce } => {
                self.push_out(
                    from,
                    LinkMessage::Pong {
                        from: self.cfg.address,
                        nonce,
                    },
                );
                let _ = peer;
            }
            LinkMessage::Pong { .. } => {
                // last_heard already updated above.
            }
            LinkMessage::Probe { from: peer, nonce } => {
                self.push_out(
                    from,
                    LinkMessage::ProbeAck {
                        from: self.cfg.address,
                        nonce,
                    },
                );
                let _ = peer;
            }
            LinkMessage::ProbeAck { from: peer, nonce } => {
                self.on_probe_ack(now, peer, nonce);
            }
            LinkMessage::Close { from: peer } => {
                self.table.remove(&peer);
                self.candidates.remove(&peer);
                self.edge_health.remove(&peer);
            }
            LinkMessage::Routed(pkt) => {
                self.route(now, pkt);
            }
            LinkMessage::Neighbors { from: _, neighbors } => {
                for (addr, ep) in neighbors {
                    self.add_candidate(addr, ep);
                }
            }
        }
    }

    /// Periodic maintenance: bootstrap retries, ring repair, shortcut formation,
    /// keep-alives and dead-edge removal. The embedding agent should call this every
    /// [`OverlayConfig::maintenance_interval`].
    pub fn on_tick(&mut self, now: SimTime) {
        if !self.started {
            return;
        }
        // 1. Bootstrap (or re-bootstrap after losing every edge) — and the
        //    re-link heartbeat: a node whose edges to every bootstrap
        //    endpoint are gone re-hellos them periodically even while it has
        //    other edges. A partitioned sub-ring scrubs all knowledge of the
        //    other side in seconds (fast dead-edge detection), so this is
        //    the path that re-merges the rings once the partition heals.
        let relink_due = !self.cfg.bootstrap.is_empty()
            && now.saturating_since(self.last_bootstrap_probe) >= self.cfg.bootstrap_retry_interval
            && !self
                .table
                .established()
                .any(|c| self.cfg.bootstrap.contains(&c.endpoint));
        if self.table.is_empty() || relink_due {
            self.last_bootstrap_probe = now;
            for ep in self.cfg.bootstrap.clone() {
                self.send_hello(now, ep, ConnectionKind::Leaf);
            }
        }
        // 2. Ring repair: request a connection to the node nearest ourselves, and
        //    link towards any gossip candidate that improves our neighbour set.
        self.request_near_connections(now);
        // 2b. Reclassify Near edges that fell outside the near set: connect
        //     requests issued while the ring is still converging terminate at
        //     whatever node is closest within a tiny connected component, so
        //     early hubs accumulate dozens of symmetric "Near" edges to
        //     distant peers. Those edges are, in truth, far links — counting
        //     them against the shortcut budget (instead of leaving the near
        //     count inflated forever) is what lets the far budget fill.
        self.reclassify_near_edges();
        // 3. Shortcuts.
        if self.cfg.shortcuts_enabled
            && self.table.count_kind(ConnectionKind::Far) < self.cfg.max_shortcuts
            && self.table.established().count() >= 2
        {
            self.request_shortcut(now);
        }
        // 4. Keep-alive and expiry — plus fast dead-edge detection.
        self.run_keepalive(now);
        if self.cfg.link_monitor {
            self.run_link_monitor(now);
        }
        // 5. Drop stale pending links.
        let timeout = self.cfg.connection_timeout;
        self.pending_links
            .retain(|_, p| now.saturating_since(p.started) < timeout);
        // 6. DHT soft-state maintenance: expiry, lease renewal, re-replication.
        self.dht_tick(now);
        // 6b. Pub/sub soft state: renew this node's subscriptions at TTL/2
        //     (the renewal also re-homes them after a topic-root crash) and
        //     re-route nacked publishes whose backoff elapsed.
        self.pubsub_tick(now);
        // 6c. Virtual streams: the RTO sweep rides the same maintenance
        //     alarm as every other deterministic timer.
        self.vstreams.tick(now);
        self.flush_streams(now);
        // 7. Gossip our neighbour view to every established peer: ring
        //    neighbours on both sides plus a random sample, so knowledge of a
        //    node spreads along the ring and the near sets can converge.
        self.gossip_neighbors();
        if self.candidates.len() > 64 {
            self.candidates.clear();
        }
    }

    /// Send each established peer a sample of our connection table: our near
    /// neighbours on both sides plus up to two random other peers.
    fn gossip_neighbors(&mut self) {
        let me = self.cfg.address;
        let mut sample: Vec<(Address, Endpoint)> = Vec::new();
        for c in self.table.right_neighbors(&me, self.cfg.near_per_side) {
            sample.push((c.peer, c.endpoint));
        }
        for c in self.table.left_neighbors(&me, self.cfg.near_per_side) {
            sample.push((c.peer, c.endpoint));
        }
        let mut others: Vec<(Address, Endpoint)> = self
            .table
            .established()
            .map(|c| (c.peer, c.endpoint))
            .filter(|(a, _)| !sample.iter().any(|(s, _)| s == a))
            .collect();
        self.rng.shuffle(&mut others);
        sample.extend(others.into_iter().take(2));
        sample.sort_by_key(|(a, _)| *a);
        sample.dedup_by_key(|(a, _)| *a);
        if sample.is_empty() {
            return;
        }
        let recipients: Vec<(Address, Endpoint)> = self
            .table
            .established()
            .map(|c| (c.peer, c.endpoint))
            .collect();
        for (peer, ep) in recipients {
            let neighbors: Vec<(Address, Endpoint)> =
                sample.iter().copied().filter(|(a, _)| *a != peer).collect();
            if neighbors.is_empty() {
                continue;
            }
            self.push_out(
                ep,
                LinkMessage::Neighbors {
                    from: me,
                    neighbors,
                },
            );
        }
    }

    // ----------------------------------------------------------------- routing

    fn route(&mut self, now: SimTime, mut pkt: RoutedPacket) {
        // Connect traffic advertises reachable endpoints: every node on the
        // routing path learns the initiator/responder as a neighbour candidate,
        // which is what lets the near sets converge without a separate gossip
        // exchange. A connect request routed toward the initiator's own address
        // must also never be handed back to the initiator itself — it has to
        // terminate at the nearest *other* node.
        // Prefer the *last* advertised endpoint: a node lists its local address
        // first and NAT-observed translations after it, and only the translated
        // address is reachable from outside the sender's site.
        let exclude = match &pkt.payload {
            RoutedPayload::ConnectRequest {
                initiator,
                endpoints,
                ..
            } => {
                if let Some(ep) = endpoints.last() {
                    self.add_candidate(*initiator, *ep);
                }
                Some(*initiator)
            }
            RoutedPayload::ConnectResponse {
                responder,
                endpoints,
                ..
            } => {
                if let Some(ep) = endpoints.last() {
                    self.add_candidate(*responder, *ep);
                }
                None
            }
            _ => None,
        };
        // Origination (a forwarded packet always arrives with `hops >= 1`):
        // stamp this node's configured hop budget.
        if pkt.hops == 0 {
            pkt.ttl = self.cfg.packet_ttl;
        }
        let my_dist = self.cfg.address.ring_distance(&pkt.dst);
        let next = self
            .table
            .closest_to_excluding(&pkt.dst, exclude.as_ref())
            .map(|c| (c.peer, c.endpoint, c.peer.ring_distance(&pkt.dst)));
        match next {
            Some((_, endpoint, dist)) if dist < my_dist => {
                if pkt.hops >= pkt.ttl {
                    self.stats.dropped_ttl += 1;
                    return;
                }
                pkt.hops += 1;
                self.push_out(endpoint, LinkMessage::Routed(pkt));
                self.stats.forwarded += 1;
            }
            _ => self.deliver_local(now, pkt),
        }
    }

    fn deliver_local(&mut self, now: SimTime, pkt: RoutedPacket) {
        match pkt.mode {
            DeliveryMode::Exact if pkt.dst != self.cfg.address => {
                // We are the closest node but not the intended target. For
                // connect housekeeping this is routine (the response can race
                // the edge it is about to create); for application payloads it
                // means the destination is not in the overlay at all.
                match &pkt.payload {
                    RoutedPayload::ConnectRequest { .. }
                    | RoutedPayload::ConnectResponse { .. } => {
                        self.stats.dropped_maintenance += 1;
                    }
                    RoutedPayload::PubSubDeliver {
                        topic,
                        msg_id,
                        relay_to,
                        payload,
                    } if !relay_to.is_empty() => {
                        // The chunk head left the ring between fan-out
                        // planning and delivery. This node — the closest
                        // remaining one — salvages the delegation so the
                        // rest of the chunk still gets the message; only
                        // the departed head's own copy is lost.
                        self.stats.dropped_no_target += 1;
                        self.stats.pubsub_salvaged += 1;
                        let (topic, msg_id, payload) = (*topic, *msg_id, payload.clone());
                        let relay_to = relay_to.clone();
                        self.pubsub_fan_out(now, topic, msg_id, &payload, &relay_to);
                    }
                    _ => self.stats.dropped_no_target += 1,
                }
                return;
            }
            _ => {}
        }
        self.stats.delivered += 1;
        match &pkt.payload {
            RoutedPayload::ConnectRequest {
                token,
                initiator,
                kind,
                endpoints,
            } => {
                if *initiator == self.cfg.address {
                    return; // our own request came back around the ring
                }
                // Answer with a routed response carrying our endpoints, and
                // simultaneously hole-punch towards the initiator's endpoints.
                let response = RoutedPacket::new(
                    self.cfg.address,
                    *initiator,
                    DeliveryMode::Exact,
                    RoutedPayload::ConnectResponse {
                        token: *token,
                        responder: self.cfg.address,
                        endpoints: self.advertised.clone(),
                    },
                );
                let kind = *kind;
                let eps = endpoints.clone();
                self.stats.originated += 1;
                self.route(now, response);
                for ep in eps {
                    self.send_hello(now, ep, kind);
                }
            }
            RoutedPayload::ConnectResponse {
                token,
                responder,
                endpoints,
            } => {
                if *responder == self.cfg.address {
                    return;
                }
                // Only act while the request is still pending. The responder
                // hellos our endpoints directly as well, and those usually win
                // the race: the HelloAck consumes the token. Falling back to
                // `Near` here re-helloed every completed *shortcut* as Near,
                // promoting the fresh Far edge on both ends — heavily-chosen
                // responders snowballed into full Near meshes and their far
                // budget could never fill.
                let Some(kind) = self.pending_links.get(token).map(|p| p.kind) else {
                    return;
                };
                for ep in endpoints.clone() {
                    self.send_hello(now, ep, kind);
                }
            }
            RoutedPayload::DhtPut {
                key,
                value,
                ttl_ms,
                version,
            } => {
                let key = *key;
                // Put is publisher-authoritative (last-writer-wins): the
                // stored version ends up at least the incoming one and
                // strictly above any conflicting record being replaced, so
                // the new value supersedes stale replicas everywhere.
                let stored_version = match self.dht.get(&key).filter(|rec| !rec.expired(now)) {
                    // No local copy does NOT mean no conflicting copy: ring
                    // churn can make a fresh node the key's owner while old
                    // replicas still hold higher-versioned records. Flooring
                    // at the time-derived version keeps this write above any
                    // copy written earlier.
                    None => (*version).max(Self::version_for(now)),
                    Some(e) if e.value == *value => e.version.max(*version),
                    Some(e) if *version > e.version => *version,
                    Some(e) => e.version + 1,
                };
                self.store_record(now, key, value.clone(), *ttl_ms, false, stored_version);
                self.replicate_key(now, key);
            }
            RoutedPayload::DhtGet { key, token } => {
                self.handle_dht_get(now, *key, *token, pkt.src);
            }
            RoutedPayload::DhtReply { token, value } => {
                self.dht_replies.push_back((*token, value.clone()));
            }
            RoutedPayload::DhtCreate {
                key,
                value,
                ttl_ms,
                token,
            } => {
                self.handle_dht_create(now, *key, value.clone(), *ttl_ms, *token, pkt.src);
            }
            RoutedPayload::DhtCreateReply {
                token,
                created,
                existing,
            } => {
                if self.on_renewal_reply(now, *token, *created, existing.as_ref()) {
                    // Internal lease-renewal traffic; not surfaced to callers.
                    return;
                }
                if let Some(claim) = self.pending_creates.remove(token) {
                    if *created {
                        // The claim succeeded: this node now owns the record
                        // and keeps it alive like any other publication —
                        // renewing with create so a conflicting winner (e.g.
                        // after a healed partition) is detected, not clobbered.
                        self.published.insert(
                            claim.key,
                            Publication {
                                value: claim.value,
                                ttl: claim.ttl,
                                version: 1,
                                last_refresh: now,
                                renew_with_create: true,
                                renew_inflight: None,
                            },
                        );
                    }
                }
                self.dht_create_replies
                    .push_back((*token, *created, existing.clone()));
            }
            RoutedPayload::DhtReplicate {
                key,
                value,
                ttl_ms,
                version,
                token,
            } => {
                // Never let a stale copy clobber a fresher one: the existing
                // record survives when it outranks the incoming push.
                apply_record_copy(self.dht.as_mut(), *key, value, *ttl_ms, *version, true, now);
                if *token != 0 {
                    // `stored` only when this node now holds a live record
                    // with the pushed value; keeping a fresher *conflicting*
                    // record must not help a claim reach its write quorum.
                    let stored = self
                        .dht
                        .get(key)
                        .filter(|rec| !rec.expired(now))
                        .is_some_and(|rec| rec.value == *value);
                    let ack = RoutedPacket::new(
                        self.cfg.address,
                        pkt.src,
                        DeliveryMode::Exact,
                        RoutedPayload::DhtReplicateAck {
                            token: *token,
                            stored,
                        },
                    );
                    self.stats.originated += 1;
                    self.route(now, ack);
                }
            }
            RoutedPayload::DhtReplicateAck { token, stored } => {
                if !*stored {
                    // The replica kept a conflicting record; the claim can
                    // only conclude via the quorum timeout (and fail).
                    return;
                }
                let quorum_reached = match self.pending_quorum_creates.get_mut(token) {
                    Some(qc) => {
                        qc.acks += 1;
                        qc.acks >= qc.acks_needed
                    }
                    None => false,
                };
                if quorum_reached {
                    if let Some(qc) = self.pending_quorum_creates.remove(token) {
                        // A renewal extends the local expiry only now that a
                        // majority holds the extended record — a failed one
                        // must leave the pre-renewal expiry in place.
                        if let Some(t) = qc.extends_to {
                            if let Some(rec) = self
                                .dht
                                .get_mut(&qc.key)
                                .filter(|rec| rec.value == qc.value)
                            {
                                rec.expires_at = rec.expires_at.max(t);
                            }
                        }
                        self.send_create_reply(now, qc.origin, qc.origin_token, true, None);
                    }
                }
            }
            RoutedPayload::DhtGetReplica { key, token } => {
                let copy = self
                    .dht
                    .get(key)
                    .filter(|rec| !rec.expired(now))
                    .map(|rec| (rec.value.clone(), rec.version, rec.remaining_ttl_ms(now)));
                let reply = RoutedPacket::new(
                    self.cfg.address,
                    pkt.src,
                    DeliveryMode::Exact,
                    RoutedPayload::DhtReplicaValue {
                        token: *token,
                        copy,
                    },
                );
                self.stats.originated += 1;
                self.route(now, reply);
            }
            RoutedPayload::DhtReplicaValue { token, copy } => {
                if let Some(read) = self.pending_quorum_reads.get_mut(token) {
                    let copy = copy.as_ref().map(|(value, version, ttl_ms)| DhtRecord {
                        value: value.clone(),
                        expires_at: now + Duration::from_millis(*ttl_ms),
                        version: *version,
                        replica: true,
                        replicated_to: Vec::new(),
                    });
                    read.responses.push((pkt.src, copy));
                    // Conclude on a majority only once a live copy is in sight
                    // (ours or a reply's): a record-less replica answering
                    // fastest must not turn a live record into a miss — that
                    // would also skip the repair that fixes the gap. With no
                    // live copy anywhere, wait for every poll (or the
                    // timeout) before answering None.
                    let key = read.key;
                    let quorum = read.responses.len() >= read.replies_needed;
                    let all_in = read.responses.len() >= read.polled;
                    let any_live = read.responses.iter().any(|(_, c)| c.is_some());
                    let own_live = self.dht.get(&key).is_some_and(|rec| !rec.expired(now));
                    if all_in || (quorum && (any_live || own_live)) {
                        self.conclude_quorum_read(now, *token);
                    }
                }
            }
            RoutedPayload::DhtRemove { key } => {
                if let Some(rec) = self.dht.remove(key) {
                    // Propagate the removal to the replicas we pushed.
                    for peer in rec.replicated_to {
                        let fwd = RoutedPacket::new(
                            self.cfg.address,
                            peer,
                            DeliveryMode::Exact,
                            RoutedPayload::DhtRemove { key: *key },
                        );
                        self.stats.originated += 1;
                        self.route(now, fwd);
                    }
                }
            }
            RoutedPayload::DhtWithdraw {
                key,
                value,
                version,
            } => {
                // Conditional removal: drop our copy only when it still holds
                // the withdrawn value at the withdrawn version — a fresher
                // conflicting record stays, and so does the same claimant's
                // *re-claimed* (newer) record when the withdraw was delayed
                // past the retry.
                if self
                    .dht
                    .get(key)
                    .is_some_and(|rec| rec.value == *value && rec.version == *version)
                {
                    self.dht.remove(key);
                }
            }
            RoutedPayload::DhtSyncDigest {
                entries,
                from_owner,
            } => {
                let entries = entries.clone();
                self.handle_sync_digest(now, &entries, *from_owner, pkt.src);
            }
            RoutedPayload::DhtSyncPull { keys } => {
                let keys = keys.clone();
                self.handle_sync_pull(now, &keys, pkt.src);
            }
            RoutedPayload::IpTunnel(_) => {
                self.delivered.push_back(pkt);
            }
            RoutedPayload::PubSubSubscribe {
                topic,
                subscriber,
                ttl_ms,
            } => {
                // We own the topic key (Closest delivery): merge the
                // subscriber into the record, pruning entries whose soft
                // state already lapsed.
                let (topic, subscriber, ttl_ms) = (*topic, *subscriber, *ttl_ms);
                self.stats.pubsub_subscriptions += 1;
                let now_ms = now.as_nanos() / 1_000_000;
                let mut entries = self.pubsub_live_entries(now, &topic);
                entries.retain(|(addr, _)| *addr != subscriber);
                entries.push((subscriber, now_ms + ttl_ms));
                entries.sort_by_key(|(addr, _)| *addr);
                self.pubsub_store_entries(now, topic, &entries);
            }
            RoutedPayload::PubSubUnsubscribe { topic, subscriber } => {
                let (topic, subscriber) = (*topic, *subscriber);
                let mut entries = self.pubsub_live_entries(now, &topic);
                let before = entries.len();
                entries.retain(|(addr, _)| *addr != subscriber);
                if entries.len() != before || entries.is_empty() {
                    self.pubsub_store_entries(now, topic, &entries);
                }
            }
            RoutedPayload::PubSubPublish {
                topic,
                msg_id,
                payload,
            } => {
                // Topic-root fan-out. The subscriber set is read in ring
                // order; if this node subscribes too it takes its copy
                // directly instead of sending itself a Deliver.
                let (topic, msg_id, payload) = (*topic, *msg_id, payload.clone());
                if self
                    .dht
                    .get(&topic)
                    .filter(|rec| !rec.expired(now))
                    .is_none()
                {
                    // No subscriber-set record here. Either the topic truly
                    // has no subscribers, or this root is mid-re-home and the
                    // record has not migrated yet. Dropping silently loses
                    // the message in the second case — answer a retryable
                    // nack so the publisher re-routes (the retry lands after
                    // the ring repairs and reaches whoever owns the key by
                    // then).
                    self.stats.pubsub_nacks_sent += 1;
                    let nack = RoutedPacket::new(
                        self.cfg.address,
                        pkt.src,
                        DeliveryMode::Exact,
                        RoutedPayload::PubSubNack { topic, msg_id },
                    );
                    self.stats.originated += 1;
                    self.route(now, nack);
                    return;
                }
                self.stats.pubsub_publishes += 1;
                let mut recipients: Vec<Address> = self
                    .pubsub_live_entries(now, &topic)
                    .into_iter()
                    .map(|(addr, _)| addr)
                    .collect();
                if let Some(at) = recipients.iter().position(|a| *a == self.cfg.address) {
                    recipients.remove(at);
                    self.stats.pubsub_delivered += 1;
                    self.pubsub_inbox
                        .push_back((topic, msg_id, payload.clone()));
                }
                self.pubsub_fan_out(now, topic, msg_id, &payload, &recipients);
            }
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id,
                relay_to,
                payload,
            } => {
                let (topic, msg_id, payload) = (*topic, *msg_id, payload.clone());
                let relay_to = relay_to.clone();
                self.stats.pubsub_delivered += 1;
                self.pubsub_inbox
                    .push_back((topic, msg_id, payload.clone()));
                if !relay_to.is_empty() {
                    // Delegated chunk: re-apply the bounded split one tree
                    // level down, sharing the same body bytes.
                    self.stats.pubsub_relayed += 1;
                    self.pubsub_fan_out(now, topic, msg_id, &payload, &relay_to);
                }
            }
            RoutedPayload::PubSubNack { msg_id, .. } => {
                let msg_id = *msg_id;
                self.on_pubsub_nack(now, msg_id);
            }
            RoutedPayload::StreamSyn { .. }
            | RoutedPayload::StreamSynAck { .. }
            | RoutedPayload::StreamData { .. }
            | RoutedPayload::StreamAck { .. }
            | RoutedPayload::StreamFin { .. } => {
                self.vstreams.on_payload(now, pkt.src, &pkt.payload);
                self.flush_streams(now);
            }
        }
    }

    // -------------------------------------------------------------- maintenance

    fn request_near_connections(&mut self, now: SimTime) {
        // (a) Routed request addressed to our own address in Closest mode: the node
        //     nearest to us on the ring answers, giving us at least one true
        //     neighbour; repeated requests plus gossip converge the near set.
        if self.table.count_kind(ConnectionKind::Near) < 2 * self.cfg.near_per_side
            && self.is_connected()
        {
            let token = self.fresh_token();
            self.pending_links.insert(
                token,
                PendingLink {
                    kind: ConnectionKind::Near,
                    started: now,
                },
            );
            let pkt = RoutedPacket::new(
                self.cfg.address,
                self.cfg.address,
                DeliveryMode::Closest,
                RoutedPayload::ConnectRequest {
                    token,
                    initiator: self.cfg.address,
                    kind: ConnectionKind::Near,
                    endpoints: self.advertised.clone(),
                },
            );
            self.stats.originated += 1;
            // Send it through a random established edge so it is not delivered
            // straight back to ourselves.
            let peers: Vec<(Endpoint, Address)> = self
                .table
                .established()
                .map(|c| (c.endpoint, c.peer))
                .collect();
            if !peers.is_empty() {
                let (ep, _) = peers[self.rng.index(peers.len())];
                let mut pkt = pkt;
                pkt.hops += 1;
                self.push_out(ep, LinkMessage::Routed(pkt));
            }
        }
        // (b) Link towards gossip candidates that would improve the neighbour set.
        let me = self.cfg.address;
        let current_right: Vec<Address> = self
            .table
            .right_neighbors(&me, self.cfg.near_per_side)
            .iter()
            .map(|c| c.peer)
            .collect();
        let current_left: Vec<Address> = self
            .table
            .left_neighbors(&me, self.cfg.near_per_side)
            .iter()
            .map(|c| c.peer)
            .collect();
        let worst_right = current_right.last().map(|a| me.clockwise_distance(a));
        let worst_left = current_left.last().map(|a| a.clockwise_distance(&me));
        // Peers already linked as Near are settled; an existing Far or Leaf
        // edge stays eligible — when a true ring neighbour first joined us
        // via a shortcut or bootstrap handshake, re-helloing it as Near
        // promotes the edge on both ends (freeing the shortcut budget slot
        // it may have been occupying).
        let mut candidates: Vec<(Address, Endpoint)> = self
            .candidates
            .iter()
            .filter(|(a, _)| {
                **a != me
                    && self
                        .table
                        .get(a)
                        .is_none_or(|c| c.kind != ConnectionKind::Near)
            })
            .map(|(a, e)| (*a, *e))
            .collect();
        // Of the improving candidates, link only towards the best
        // `near_per_side` per side. While the near set is underfull every
        // candidate "improves", and helloing the whole gossip backlog at once
        // permanently meshed small rings (and at scale would flood a joining
        // node); the nearest candidates are the only ones that can end up in
        // the converged near set anyway.
        candidates.sort_by_key(|(a, _)| me.clockwise_distance(a));
        let mut picked: Vec<(Address, Endpoint)> = Vec::new();
        for &(addr, ep) in candidates.iter().take(self.cfg.near_per_side) {
            let improves = current_right.len() < self.cfg.near_per_side
                || worst_right.is_some_and(|w| me.clockwise_distance(&addr) < w);
            if improves {
                picked.push((addr, ep));
            }
        }
        candidates.sort_by_key(|(a, _)| a.clockwise_distance(&me));
        for &(addr, ep) in candidates.iter().take(self.cfg.near_per_side) {
            let improves = current_left.len() < self.cfg.near_per_side
                || worst_left.is_some_and(|w| addr.clockwise_distance(&me) < w);
            if improves && !picked.contains(&(addr, ep)) {
                picked.push((addr, ep));
            }
        }
        for (addr, ep) in picked {
            self.send_hello(now, ep, ConnectionKind::Near);
            // Consume the candidate: if the hello lands, the edge appears in
            // the table; if the peer is gone, gossip will not resurrect it
            // and we stop retrying a dead endpoint every tick.
            self.candidates.remove(&addr);
        }
    }

    /// Demote established `Near` edges that are not among the
    /// `near_per_side` nearest established peers on either side: they are far
    /// links in fact, and belong to the shortcut budget. Adjacency is decided
    /// purely from local state, so the classification is stable — unlike the
    /// old behaviour of trusting whatever kind the last handshake carried.
    fn reclassify_near_edges(&mut self) {
        let me = self.cfg.address;
        let near_set: Vec<Address> = self
            .table
            .right_neighbors(&me, self.cfg.near_per_side)
            .iter()
            .chain(
                self.table
                    .left_neighbors(&me, self.cfg.near_per_side)
                    .iter(),
            )
            .map(|c| c.peer)
            .collect();
        // Outside the near set, a Near label is a leftover from an
        // unconverged handshake: demote to Far. The reverse (a true ring
        // neighbour labelled Far) heals through the handshake path — the
        // candidate scan re-hellos it as Near and `merged_kind` promotes —
        // so ring repair keeps its "fewer Near edges than budget" trigger.
        let demote: Vec<Connection> = self
            .table
            .established()
            .filter(|c| c.kind == ConnectionKind::Near && !near_set.contains(&c.peer))
            .cloned()
            .collect();
        for mut conn in demote {
            conn.kind = ConnectionKind::Far;
            self.table.upsert(conn);
        }
    }

    /// Kind to record for an edge a handshake proposes as `proposed`: an
    /// existing edge keeps its classification unless the proposal outranks it
    /// (`Leaf < Far < Near`). Without this, a shortcut handshake landing on a
    /// current Near neighbour silently demoted it to Far — the near count
    /// dropped, ring repair re-requested the same neighbour, and both
    /// budgets were miscounted under load.
    fn merged_kind(&self, peer: &Address, proposed: ConnectionKind) -> ConnectionKind {
        fn rank(k: ConnectionKind) -> u8 {
            match k {
                ConnectionKind::Leaf => 0,
                ConnectionKind::Far => 1,
                ConnectionKind::Near => 2,
            }
        }
        match self.table.get(peer) {
            Some(existing) if rank(existing.kind) >= rank(proposed) => existing.kind,
            _ => proposed,
        }
    }

    /// Draw one Kleinberg shortcut offset: `d = 2^bits` with `bits` uniform in
    /// `[floor_bits, 160)` (log-uniform over ring distances) and an 8-bit
    /// mantissa so targets fall between the powers of two rather than on them.
    fn draw_shortcut_distance(&mut self, floor_bits: f64) -> Distance {
        let bits = floor_bits + self.rng.unit() * (160.0 - floor_bits);
        let exp = (bits as u32).min(159);
        // d = m << (exp - 8) with a 9-bit mantissa m ∈ [256, 512).
        let m = ((bits - exp as f64).exp2() * 256.0) as u64;
        let mut out = [0u8; 20];
        if exp < 8 {
            out[19] = 1u8 << exp;
        } else {
            let shift = exp - 8;
            let mut v = m << (shift % 8);
            let mut byte = 19 - (shift / 8) as usize;
            while v > 0 {
                out[byte] = (v & 0xFF) as u8;
                v >>= 8;
                if byte == 0 {
                    break;
                }
                byte -= 1;
            }
        }
        Distance(out)
    }

    fn request_shortcut(&mut self, now: SimTime) {
        // Kleinberg / Symphony harmonic distance: pick d = 2^(160·u) with u ∈ (0,1),
        // i.e. uniform in log-space, and connect to the node closest to self + d.
        //
        // Two degenerate draw classes only show up at scale and silently burn
        // the maintenance tick (pinning nodes below `max_shortcuts` for long
        // stretches):
        //  - d smaller than the gap to our nearest neighbour: the request
        //    terminates at a node we are already connected to;
        //  - d landing the target next to an existing Far peer: ditto.
        // So the log-space draw is floored just above the nearest-neighbour
        // gap, and draws whose locally-predicted responder is already a
        // connected peer adjacent to the target are redrawn (bounded).
        let me = self.cfg.address;
        let nearest = self.table.best_distance_to(&me);
        // Bit-length of the nearest-neighbour gap; draws below it are wasted.
        let floor_bits = (161 - nearest.leading_zero_bits()).min(156) as f64;
        let mut target = None;
        for _ in 0..8 {
            let d = self.draw_shortcut_distance(floor_bits);
            let t = me.add_distance(&d);
            let predicted = self
                .table
                .closest_to(&t)
                .map(|c| (c.peer, c.peer.ring_distance(&t)));
            match predicted {
                // The draw most likely terminates at an already-connected
                // peer (it sits within about one ring gap of the target):
                // retry in a different octave.
                Some((peer, pd)) if peer != me && pd <= nearest => {
                    self.stats.shortcut_redraws += 1;
                }
                _ => {
                    target = Some(t);
                    break;
                }
            }
        }
        let Some(target) = target else {
            // Every draw predicted an already-connected responder (the
            // prediction is local, but eight straight hits mean the table
            // already covers the draw range): skip the tick instead of
            // burning a routed request and a pending link on a duplicate.
            // Next tick redraws afresh.
            return;
        };
        let token = self.fresh_token();
        self.pending_links.insert(
            token,
            PendingLink {
                kind: ConnectionKind::Far,
                started: now,
            },
        );
        let pkt = RoutedPacket::new(
            self.cfg.address,
            target,
            DeliveryMode::Closest,
            RoutedPayload::ConnectRequest {
                token,
                initiator: self.cfg.address,
                kind: ConnectionKind::Far,
                endpoints: self.advertised.clone(),
            },
        );
        self.stats.originated += 1;
        self.route(now, pkt);
    }

    fn run_keepalive(&mut self, now: SimTime) {
        let ping_interval = self.cfg.ping_interval;
        let timeout = self.cfg.connection_timeout;
        let me = self.cfg.address;
        let mut to_ping = Vec::new();
        let mut to_drop = Vec::new();
        let mut gossip: Vec<(Address, Endpoint)> = Vec::new();
        for conn in self.table.iter() {
            if now.saturating_since(conn.last_heard) > timeout {
                to_drop.push(conn.peer);
            } else if now.saturating_since(conn.last_heard) > ping_interval
                && now.saturating_since(conn.last_ping_sent) > ping_interval
            {
                to_ping.push((conn.peer, conn.endpoint));
            }
            if conn.state == ConnectionState::Established {
                gossip.push((conn.peer, conn.endpoint));
            }
        }
        for peer in to_drop {
            self.table.remove(&peer);
        }
        for (peer, ep) in to_ping {
            let nonce = self.rng.next_u64();
            self.push_out(ep, LinkMessage::Ping { from: me, nonce });
            if let Some(c) = self.table.get_mut(&peer) {
                c.last_ping_sent = now;
            }
        }
        // Record every established peer as a candidate we can gossip to others —
        // and opportunistically learn candidates from the table itself.
        for (addr, ep) in gossip {
            self.candidates.insert(addr, ep);
        }
    }

    // ------------------------------------------------------------- link monitor

    /// The adaptive probe deadline for one edge: `srtt + 4·rttvar`, doubled
    /// per consecutive miss, clamped to the probe-timeout bounds. The backoff
    /// shift is capped at 2 so a lossy edge — which legitimately accumulates
    /// more consecutive misses under phi-accrual before a verdict — still
    /// detects a real crash within seconds rather than paying the 3 s
    /// ceiling on every extra round.
    fn probe_timeout(health: &EdgeHealth) -> Duration {
        let base_ns = match health.srtt_ns {
            Some(srtt) => srtt + 4 * health.rttvar_ns,
            None => PROBE_TIMEOUT_INITIAL.as_nanos(),
        };
        let backed_off = base_ns.saturating_mul(1u64 << health.failures.min(2));
        Duration::from_nanos(
            backed_off.clamp(PROBE_TIMEOUT_MIN.as_nanos(), PROBE_TIMEOUT_MAX.as_nanos()),
        )
    }

    /// Feed a probe ack into the edge's RTT estimator and clear the
    /// outstanding probe.
    fn on_probe_ack(&mut self, now: SimTime, peer: Address, nonce: u64) {
        let Some(health) = self.edge_health.get_mut(&peer) else {
            return;
        };
        let Some((expected, sent, _)) = health.outstanding else {
            return;
        };
        if expected != nonce {
            return; // an ack for an older, superseded probe
        }
        let sample = now.saturating_since(sent).as_nanos();
        match health.srtt_ns {
            // RFC 6298 smoothing (α = 1/8, β = 1/4).
            Some(srtt) => {
                let err = srtt.abs_diff(sample);
                health.rttvar_ns = health.rttvar_ns - health.rttvar_ns / 4 + err / 4;
                health.srtt_ns = Some(srtt - srtt / 8 + sample / 8);
            }
            None => {
                health.srtt_ns = Some(sample);
                health.rttvar_ns = sample / 2;
            }
        }
        health.outstanding = None;
        health.failures = 0;
        health.record_outcome(false);
    }

    /// Account inbound traffic that failed to decode as a link message (the
    /// transport already dropped it; this surfaces the count in the stats).
    pub fn note_malformed(&mut self, count: u64) {
        self.stats.malformed_dropped += count;
    }

    /// Probe silent established edges and drop the ones that stopped
    /// answering. Healthy edges hear gossip every tick, so in steady state
    /// probes only flow to peers that actually went quiet — and a crashed
    /// peer is detected after `probe_failure_limit` misses (a few seconds)
    /// instead of the 45 s connection timeout.
    fn run_link_monitor(&mut self, now: SimTime) {
        // Drop monitor state for edges that left the table by other means.
        let table = &self.table;
        self.edge_health.retain(|peer, _| table.contains(peer));
        let probe_interval = self.cfg.probe_interval;
        let failure_limit = self.cfg.probe_failure_limit;
        let phi_accrual = self.cfg.phi_accrual;
        let phi_threshold = self.cfg.phi_threshold;
        let me = self.cfg.address;
        // Did this node itself stall past the deadlines? The monitor runs
        // every maintenance tick; a gap of more than two intervals means the
        // pump was starved (CPU-saturated host), so deadlines that expired
        // inside the gap say nothing about the peer.
        let prev_run = self.last_monitor_run;
        let stalled = prev_run != SimTime::ZERO
            && now.saturating_since(prev_run)
                > self.cfg.maintenance_interval + self.cfg.maintenance_interval;
        self.last_monitor_run = now;
        let mut to_probe: Vec<(Address, Endpoint)> = Vec::new();
        let mut to_drop: Vec<(Address, Endpoint)> = Vec::new();
        let peers: Vec<(Address, Endpoint, SimTime)> = self
            .table
            .established()
            .map(|c| (c.peer, c.endpoint, c.last_heard))
            .collect();
        for (peer, endpoint, last_heard) in peers {
            let health = self.edge_health.entry(peer).or_default();
            if let Some((nonce, sent, deadline)) = health.outstanding {
                // The probe runs to its deadline even if other traffic from
                // the peer arrives meanwhile — the exchange is then a loss
                // *measurement* (did the ack make it back?) feeding the phi
                // window, not just a liveness check.
                if now < deadline {
                    continue;
                }
                if stalled && deadline > prev_run {
                    // The deadline was still in the future the last time
                    // this node got to run — it expired while *we* were
                    // stalled, not while the peer was silent for its own
                    // full timeout. Clamp the deadline forward to this
                    // pump tick instead of charging the peer a miss.
                    let extended = now + Self::probe_timeout(health);
                    health.outstanding = Some((nonce, sent, extended));
                    self.stats.link_probe_deadline_clamps += 1;
                    continue;
                }
                health.outstanding = None;
                if last_heard > sent {
                    // The peer spoke since the probe went out (any message
                    // proves liveness) but the ack itself never came back:
                    // the link ate the exchange. A pure loss sample — the
                    // window learns the edge's loss rate with no suspicion
                    // attached.
                    health.failures = 0;
                    health.record_outcome(true);
                    continue;
                }
                health.failures += 1;
                if health.failures == 1 {
                    // A new miss episode: freeze the per-miss suspicion
                    // at the loss rate observed *before* this episode,
                    // so a crash's own misses cannot dilute it.
                    health.phi_per_miss = -health.loss_estimate().log10();
                }
                health.record_outcome(true);
                self.stats.link_probe_timeouts += 1;
                let dead = if phi_accrual {
                    health.phi() >= phi_threshold
                } else {
                    health.failures >= failure_limit
                };
                if dead {
                    to_drop.push((peer, endpoint));
                } else {
                    to_probe.push((peer, endpoint));
                }
            } else if now.saturating_since(last_heard) >= probe_interval {
                to_probe.push((peer, endpoint));
            }
        }
        for (peer, endpoint) in to_drop {
            self.table.remove(&peer);
            self.candidates.remove(&peer);
            self.edge_health.remove(&peer);
            self.stats.dead_edges_detected += 1;
            // Receipt-driven pub/sub cleanup: a dead peer stops receiving
            // fan-out immediately instead of aging out of topic records.
            self.pubsub_prune_subscriber(now, peer);
            // Tell the peer too: if the verdict was a false positive (probe
            // acks lost on a live link), a silent removal would leave a
            // half-open edge — this node answers the peer's probes forever
            // while never routing to it, and the two sides disagree on
            // ownership and replica sets indefinitely. The Close is simply
            // lost when the peer really is dead.
            self.push_out(endpoint, LinkMessage::Close { from: me });
        }
        for (peer, endpoint) in to_probe {
            let nonce = self.rng.next_u64();
            let health = self.edge_health.entry(peer).or_default();
            let deadline = now + Self::probe_timeout(health);
            health.outstanding = Some((nonce, now, deadline));
            self.stats.link_probes_sent += 1;
            self.push_out(endpoint, LinkMessage::Probe { from: me, nonce });
        }
    }

    // ------------------------------------------------------------ dht subsystem

    /// Insert a record into the local store. The replica bookkeeping starts
    /// empty, so an owner-path overwrite (a TTL/2 refresh put) re-pushes every
    /// replica with the renewed expiry — replicas are soft state too and
    /// would otherwise age out while the owner's copy stays fresh.
    fn store_record(
        &mut self,
        now: SimTime,
        key: Address,
        value: Bytes,
        ttl_ms: u64,
        replica: bool,
        version: u64,
    ) {
        let expires_at = now + Duration::from_millis(ttl_ms);
        self.dht.insert(
            key,
            DhtRecord {
                value,
                expires_at,
                version,
                replica,
                replicated_to: Vec::new(),
            },
        );
    }

    /// Majority size of a copy set with `copies` members (owner included):
    /// the number of stored copies a quorum operation requires.
    fn quorum_of(copies: usize) -> usize {
        copies / 2 + 1
    }

    /// Version assigned to a newly stored record: the virtual time in whole
    /// milliseconds (floored at 1). Time-derived versions stay globally
    /// monotone across writes, so a write accepted by an owner that never saw
    /// the key (ring churn handed it a record-less range) still orders above
    /// stale copies lingering on replicas — a plain counter would restart at
    /// 1 there and lose every quorum read to them.
    fn version_for(now: SimTime) -> u64 {
        (now.as_nanos() / 1_000_000).max(1)
    }

    /// Serve a `DhtGet` as the key's coordinator. With quorum reads enabled
    /// and a replica set to poll, the answer waits for a majority of the copy
    /// set; otherwise (single copy, no peers, quorum disabled) the local store
    /// answers alone, as before.
    fn handle_dht_get(&mut self, now: SimTime, key: Address, token: u64, origin: Address) {
        let targets = if self.cfg.dht.quorum && self.cfg.dht.replication > 1 {
            self.replica_targets(&key, self.cfg.dht.replication - 1)
        } else {
            Vec::new()
        };
        if targets.is_empty() {
            let value = self
                .dht
                .get(&key)
                .filter(|rec| !rec.expired(now))
                .map(|rec| rec.value.clone());
            let reply = RoutedPacket::new(
                self.cfg.address,
                origin,
                DeliveryMode::Exact,
                RoutedPayload::DhtReply { token, value },
            );
            self.stats.originated += 1;
            self.route(now, reply);
            return;
        }
        let op = self.fresh_token();
        let replies_needed = Self::quorum_of(targets.len() + 1) - 1;
        for peer in &targets {
            let poll = RoutedPacket::new(
                self.cfg.address,
                *peer,
                DeliveryMode::Exact,
                RoutedPayload::DhtGetReplica { key, token: op },
            );
            self.stats.originated += 1;
            self.route(now, poll);
        }
        self.pending_quorum_reads.insert(
            op,
            QuorumRead {
                origin,
                origin_token: token,
                key,
                polled: targets.len(),
                replies_needed,
                responses: Vec::new(),
                issued: now,
            },
        );
        self.stats.dht_quorum_reads += 1;
    }

    /// Conclude a quorum read: answer the origin with the freshest copy seen
    /// (local store included) and repair every copy that turned out stale or
    /// missing — on this node by storing and re-replicating the freshest
    /// record, on polled replicas by pushing it to them directly.
    fn conclude_quorum_read(&mut self, now: SimTime, op: u64) {
        let Some(read) = self.pending_quorum_reads.remove(&op) else {
            return;
        };
        let own: Option<DhtRecord> = self
            .dht
            .get(&read.key)
            .filter(|rec| !rec.expired(now))
            .cloned();
        let mut best = own.clone();
        for (_, copy) in &read.responses {
            let fresher = match (&best, copy) {
                (_, None) => false,
                (None, Some(_)) => true,
                (Some(b), Some(c)) => c.freshness() > b.freshness(),
            };
            if fresher {
                best = copy.clone();
            }
        }
        let reply = RoutedPacket::new(
            self.cfg.address,
            read.origin,
            DeliveryMode::Exact,
            RoutedPayload::DhtReply {
                token: read.origin_token,
                value: best.as_ref().map(|c| c.value.clone()),
            },
        );
        self.stats.originated += 1;
        self.route(now, reply);
        let Some(best) = best else {
            return; // nothing live anywhere: nothing to repair with
        };
        // Repair decisions tolerate small expiry skew: a replica's expiry is
        // reconstructed from its remaining TTL and so arrives inflated by the
        // reply's transit time (plus rounding). Without slack every read of a
        // perfectly healthy record would "repair" all its in-sync copies.
        let materially_staler = |copy: &DhtRecord| {
            best.version > copy.version
                || best.value != copy.value
                || best.expires_at > copy.expires_at + READ_REPAIR_SLACK
        };
        let own_stale =
            own.is_none_or(|o| best.freshness() > o.freshness() && materially_staler(&o));
        if own_stale {
            // Adopt the freshest copy locally and push it back out through the
            // normal replication path (replicas keep their own copy when it is
            // already as fresh).
            let ttl_ms = best.remaining_ttl_ms(now);
            self.store_record(
                now,
                read.key,
                best.value.clone(),
                ttl_ms,
                false,
                best.version,
            );
            self.stats.dht_read_repairs += 1;
            self.replicate_key(now, read.key);
            return;
        }
        // Our copy was the freshest: push it to every polled replica that
        // answered with a materially stale or missing copy.
        let stale_peers: Vec<Address> = read
            .responses
            .iter()
            .filter(|(_, copy)| copy.as_ref().is_none_or(&materially_staler))
            .map(|(peer, _)| *peer)
            .collect();
        let ttl_ms = best.remaining_ttl_ms(now);
        for peer in stale_peers {
            let repair = RoutedPacket::new(
                self.cfg.address,
                peer,
                DeliveryMode::Exact,
                RoutedPayload::DhtReplicate {
                    key: read.key,
                    value: best.value.clone(),
                    ttl_ms,
                    version: best.version,
                    token: 0,
                },
            );
            self.stats.originated += 1;
            self.stats.dht_read_repairs += 1;
            self.route(now, repair);
        }
    }

    /// Serve a `DhtCreate` as the key's coordinator.
    ///
    /// * A live record with the *same* value is the claimant's own lease being
    ///   renewed: extend the expiry, refresh the replicas, answer `created`.
    /// * A live record with a different value is a conflict: answer
    ///   `!created` with the winner's value.
    /// * Otherwise store the record — and, with quorum writes enabled,
    ///   acknowledge only once a majority of the copy set holds it.
    fn handle_dht_create(
        &mut self,
        now: SimTime,
        key: Address,
        value: Bytes,
        ttl_ms: u64,
        token: u64,
        origin: Address,
    ) {
        // A claim still awaiting its write quorum is not committed: answer a
        // concurrent claim for the same key as retryable (`existing: None`)
        // rather than as a conflict — the pending claim may yet be withdrawn,
        // and a conflict reply would make the other claimant permanently
        // blacklist an address that ends up free.
        if self
            .pending_quorum_creates
            .values()
            .any(|qc| qc.key == key && qc.value != value)
        {
            let reply = RoutedPacket::new(
                self.cfg.address,
                origin,
                DeliveryMode::Exact,
                RoutedPayload::DhtCreateReply {
                    token,
                    created: false,
                    existing: None,
                },
            );
            self.stats.originated += 1;
            self.route(now, reply);
            return;
        }
        if let Some(existing) = self.dht.get(&key).filter(|rec| !rec.expired(now)) {
            if existing.value != value {
                let reply = RoutedPacket::new(
                    self.cfg.address,
                    origin,
                    DeliveryMode::Exact,
                    RoutedPayload::DhtCreateReply {
                        token,
                        created: false,
                        existing: Some(existing.value.clone()),
                    },
                );
                self.stats.originated += 1;
                self.route(now, reply);
                return;
            }
            // The claimant's own lease being renewed: acknowledge — and
            // extend the local expiry — only through the same write quorum
            // as a fresh claim. An owner partitioned from its replicas
            // extending and confirming renewals alone would keep serving a
            // lease whose every replica copy has expired.
            // Re-borrow mutably: the `if let` above proves the record exists.
            // If that invariant ever drifts, failing the renewal (claimant
            // retries via its renewal timeout) beats panicking the node.
            let Some(rec) = self.dht.get_mut(&key) else {
                return;
            };
            rec.replica = false;
            let version = rec.version;
            let extends_to = now + Duration::from_millis(ttl_ms);
            self.commit_create(
                now,
                key,
                value,
                ttl_ms,
                version,
                token,
                origin,
                Some(extends_to),
            );
            return;
        }
        let version = Self::version_for(now);
        self.store_record(now, key, value.clone(), ttl_ms, false, version);
        self.commit_create(now, key, value, ttl_ms, version, token, origin, None);
    }

    /// Send (or suppress) the `DhtCreateReply` concluding a create. Internal
    /// quorum writes — pub/sub root rewrites pushed through the same conflict
    /// rules as lease claims — carry [`INTERNAL_QUORUM_TOKEN`] with this
    /// node's own address as origin; their outcome is visible in the store
    /// itself, so no reply is emitted (and none could be matched: real
    /// tokens start at 1).
    fn send_create_reply(
        &mut self,
        now: SimTime,
        origin: Address,
        token: u64,
        created: bool,
        existing: Option<Bytes>,
    ) {
        if token == INTERNAL_QUORUM_TOKEN && origin == self.cfg.address {
            return;
        }
        let reply = RoutedPacket::new(
            self.cfg.address,
            origin,
            DeliveryMode::Exact,
            RoutedPayload::DhtCreateReply {
                token,
                created,
                existing,
            },
        );
        self.stats.originated += 1;
        self.route(now, reply);
    }

    /// Commit a stored claim or renewal: push the record to the key's replica
    /// set with an ack token and answer `created` once a majority of the copy
    /// set holds it (immediately when the copy set is just this node).
    #[allow(clippy::too_many_arguments)]
    fn commit_create(
        &mut self,
        now: SimTime,
        key: Address,
        value: Bytes,
        ttl_ms: u64,
        version: u64,
        token: u64,
        origin: Address,
        extends_to: Option<SimTime>,
    ) {
        let targets = if self.cfg.dht.quorum && self.cfg.dht.replication > 1 {
            self.replica_targets(&key, self.cfg.dht.replication - 1)
        } else {
            Vec::new()
        };
        if targets.is_empty()
            && self.cfg.dht.quorum
            && self.cfg.dht.replication > 1
            && self.ever_connected
        {
            // This node *had* peers but is cut off from all of them (the link
            // monitor drops dead edges in seconds, so an isolated node's
            // table empties fast). Its single copy cannot speak for a
            // majority of the intended copy set: fail the write as retryable
            // instead of self-acknowledging — otherwise a partitioned
            // minority of one could confirm claims (and renewals) against
            // itself. A fresh claim is withdrawn from the local store too.
            if extends_to.is_none()
                && self
                    .dht
                    .get(&key)
                    .is_some_and(|rec| rec.value == value && rec.version == version)
            {
                self.dht.remove(&key);
            }
            self.stats.dht_quorum_writes += 1;
            self.stats.dht_quorum_write_timeouts += 1;
            self.send_create_reply(now, origin, token, false, None);
            return;
        }
        if targets.is_empty() {
            // Single-copy set (or quorum disabled): acknowledge immediately
            // and replicate fire-and-forget as before.
            if let Some(rec) = self.dht.get_mut(&key) {
                rec.replicated_to.clear();
                if let Some(t) = extends_to {
                    rec.expires_at = rec.expires_at.max(t);
                }
            }
            self.replicate_key(now, key);
            self.send_create_reply(now, origin, token, true, None);
            return;
        }
        let op = self.fresh_token();
        if let Some(rec) = self.dht.get_mut(&key) {
            rec.replicated_to = targets.clone();
        }
        for peer in &targets {
            let push = RoutedPacket::new(
                self.cfg.address,
                *peer,
                DeliveryMode::Exact,
                RoutedPayload::DhtReplicate {
                    key,
                    value: value.clone(),
                    ttl_ms,
                    version,
                    token: op,
                },
            );
            self.stats.originated += 1;
            self.route(now, push);
        }
        self.pending_quorum_creates.insert(
            op,
            QuorumCreate {
                origin,
                origin_token: token,
                key,
                value,
                version,
                extends_to,
                acks_needed: Self::quorum_of(targets.len() + 1) - 1,
                acks: 0,
                targets,
                issued: now,
            },
        );
        self.stats.dht_quorum_writes += 1;
    }

    /// Fail a quorum create that never reached a majority and reject the
    /// claim. A *fresh* claim is withdrawn — from the local store (so the key
    /// is not half-claimed on this side of a partition) and from any replica
    /// that stored it but whose ack was lost. A failed *renewal* leaves the
    /// previously committed copies untouched; the record simply keeps its
    /// pre-renewal expiries. `existing: None` on the reply distinguishes a
    /// quorum failure (retry later) from a real conflict.
    fn fail_quorum_create(&mut self, now: SimTime, op: u64) {
        let Some(qc) = self.pending_quorum_creates.remove(&op) else {
            return;
        };
        if qc.extends_to.is_none() {
            let still_ours = self
                .dht
                .get(&qc.key)
                .is_some_and(|rec| rec.value == qc.value && rec.version == qc.version);
            if still_ours {
                self.dht.remove(&qc.key);
            }
            for peer in &qc.targets {
                let withdraw = RoutedPacket::new(
                    self.cfg.address,
                    *peer,
                    DeliveryMode::Exact,
                    RoutedPayload::DhtWithdraw {
                        key: qc.key,
                        value: qc.value.clone(),
                        version: qc.version,
                    },
                );
                self.stats.originated += 1;
                self.route(now, withdraw);
            }
        }
        self.send_create_reply(now, qc.origin, qc.origin_token, false, None);
    }

    /// Intercept a `DhtCreateReply` belonging to a lease renewal this node
    /// issued from [`OverlayNode::dht_tick`]. Returns true when the token was
    /// a renewal (the reply is internal and must not reach callers).
    fn on_renewal_reply(
        &mut self,
        now: SimTime,
        token: u64,
        created: bool,
        existing: Option<&Bytes>,
    ) -> bool {
        let Some(key) = self
            .published
            .iter()
            .find(|(_, p)| p.renew_inflight.is_some_and(|(t, _)| t == token))
            .map(|(k, _)| *k)
        else {
            return false;
        };
        if created {
            // The find above proves the publication exists; re-borrow mutably.
            if let Some(p) = self.published.get_mut(&key) {
                p.renew_inflight = None;
                p.last_refresh = now;
                self.stats.dht_refreshes += 1;
            }
        } else if existing.is_some() {
            // A conflicting record owns the key — this lease lost (typical
            // after a healed partition). Stop renewing and tell the agent.
            self.published.remove(&key);
            self.lost_leases.push_back(key);
            self.stats.dht_leases_lost += 1;
        }
        // created == false with no existing value is a quorum-write failure
        // (the coordinator could not reach a majority), not a conflict: keep
        // the publication and the in-flight marker — the renewal timeout
        // re-issues (and alarms) until the partition heals.
        true
    }

    /// The `count` established peers closest (ring distance) to `key`,
    /// nearest first — the nodes that should hold this key's replicas.
    fn replica_targets(&self, key: &Address, count: usize) -> Vec<Address> {
        let mut peers: Vec<(Distance, Address)> = self
            .table
            .established()
            .map(|c| (c.peer.ring_distance(key), c.peer))
            .collect();
        peers.sort();
        peers.into_iter().take(count).map(|(_, a)| a).collect()
    }

    /// Is this node the ring owner of `key` (closer than every established
    /// peer)? Mirrors the `Closest` delivery rule, so the node that greedy
    /// routing delivers a DHT operation to also believes it owns the key.
    fn owns_key(&self, key: &Address) -> bool {
        let my_dist = self.cfg.address.ring_distance(key);
        !self
            .table
            .established()
            .any(|c| c.peer.ring_distance(key) < my_dist)
    }

    /// Push replicas of `key` to the ring neighbours that should hold copies
    /// and do not yet (no-op unless this node owns the key).
    fn replicate_key(&mut self, now: SimTime, key: Address) {
        if self.cfg.dht.replication <= 1 || !self.owns_key(&key) {
            return;
        }
        let targets = self.replica_targets(&key, self.cfg.dht.replication - 1);
        let Some(rec) = self.dht.get_mut(&key) else {
            return;
        };
        if rec.expired(now) {
            return;
        }
        rec.replica = false; // we are the owner, whatever path stored it
        let missing: Vec<Address> = targets
            .iter()
            .filter(|t| !rec.replicated_to.contains(t))
            .copied()
            .collect();
        rec.replicated_to = targets;
        let value = rec.value.clone();
        let ttl_ms = rec.remaining_ttl_ms(now);
        let version = rec.version;
        for peer in missing {
            let pkt = RoutedPacket::new(
                self.cfg.address,
                peer,
                DeliveryMode::Exact,
                RoutedPayload::DhtReplicate {
                    key,
                    value: value.clone(),
                    ttl_ms,
                    version,
                    token: 0,
                },
            );
            self.stats.originated += 1;
            self.route(now, pkt);
        }
    }

    /// Per-tick DHT maintenance: soft-state expiry, publisher lease renewal at
    /// TTL/2, quorum-operation timeouts, and (re-)replication of owned records
    /// when the neighbour set changed since the last pass.
    fn dht_tick(&mut self, now: SimTime) {
        self.stats.dht_expired += self.dht.expire(now) as u64;
        // Forget creates whose reply never came; a stale reply must not
        // resurrect an abandoned claim as a publication.
        self.pending_creates
            .retain(|_, p| now.saturating_since(p.issued) < PENDING_CREATE_TIMEOUT);
        // Quorum writes that never reached a majority: reject the claim.
        let failed_writes: Vec<u64> = self
            .pending_quorum_creates
            .iter()
            .filter(|(_, qc)| now.saturating_since(qc.issued) >= self.cfg.dht.quorum_timeout)
            .map(|(op, _)| *op)
            .collect();
        for op in failed_writes {
            self.stats.dht_quorum_write_timeouts += 1;
            self.fail_quorum_create(now, op);
        }
        // Quorum reads missing answers: conclude from the copies that arrived.
        let stalled_reads: Vec<u64> = self
            .pending_quorum_reads
            .iter()
            .filter(|(_, qr)| now.saturating_since(qr.issued) >= self.cfg.dht.quorum_timeout)
            .map(|(op, _)| *op)
            .collect();
        for op in stalled_reads {
            self.stats.dht_quorum_read_timeouts += 1;
            self.conclude_quorum_read(now, op);
        }
        // Publisher refresh. Plain publications re-put (last-writer-wins);
        // claimed publications renew with a create so a conflicting record is
        // detected. A renewal whose reply never came is re-issued after the
        // renewal timeout and alarmed — never silently dropped, which would
        // let the lease expire while this node keeps using the address.
        enum Renew {
            Put(Bytes, Duration, u64),
            Create(Bytes, Duration, bool),
        }
        let due: Vec<(Address, Renew)> = self
            .published
            .iter()
            .filter_map(|(k, p)| {
                if p.renew_with_create {
                    match p.renew_inflight {
                        Some((_, issued))
                            if now.saturating_since(issued) >= self.cfg.dht.renewal_timeout =>
                        {
                            Some((*k, Renew::Create(p.value.clone(), p.ttl, true)))
                        }
                        Some(_) => None,
                        None if now.saturating_since(p.last_refresh) >= p.ttl / 2 => {
                            Some((*k, Renew::Create(p.value.clone(), p.ttl, false)))
                        }
                        None => None,
                    }
                } else if now.saturating_since(p.last_refresh) >= p.ttl / 2 {
                    Some((*k, Renew::Put(p.value.clone(), p.ttl, p.version)))
                } else {
                    None
                }
            })
            .collect();
        for (key, renew) in due {
            match renew {
                Renew::Put(value, ttl, version) => {
                    if let Some(p) = self.published.get_mut(&key) {
                        p.last_refresh = now;
                    }
                    self.stats.dht_refreshes += 1;
                    self.send_put(now, key, value, ttl, version);
                }
                Renew::Create(value, ttl, timed_out) => {
                    if timed_out {
                        self.stats.dht_renewal_timeouts += 1;
                    }
                    let token = self.fresh_token();
                    if let Some(p) = self.published.get_mut(&key) {
                        p.renew_inflight = Some((token, now));
                    }
                    let ttl_ms = ttl.as_nanos() / 1_000_000;
                    let pkt = RoutedPacket::new(
                        self.cfg.address,
                        key,
                        DeliveryMode::Closest,
                        RoutedPayload::DhtCreate {
                            key,
                            value,
                            ttl_ms,
                            token,
                        },
                    );
                    self.stats.originated += 1;
                    self.route(now, pkt);
                }
            }
        }
        // Re-replication: walk owned records and fill replication gaps — but
        // only when the established-peer set actually changed. Ownership and
        // replica targets are pure functions of that set, and fresh stores /
        // refresh puts already replicate on the delivery path.
        let peers: Vec<Address> = self.table.established().map(|c| c.peer).collect();
        if peers != self.last_replica_peers {
            self.last_replica_peers = peers;
            for key in self.dht.keys() {
                self.replicate_key(now, key);
            }
        }
        // Anti-entropy: periodically exchange record digests so replica sets
        // converge even when no read or renewal touches a key.
        if self.cfg.dht.sweep {
            self.anti_entropy_tick(now);
        }
    }

    // ------------------------------------------------------------- anti-entropy

    /// Run the anti-entropy sweep when due. The first sweep is offset by a
    /// random fraction of the interval so a fleet started together does not
    /// digest in lockstep.
    fn anti_entropy_tick(&mut self, now: SimTime) {
        match self.next_sweep {
            None => {
                let offset = self.cfg.dht.sweep_interval.mul_f64(self.rng.unit());
                self.next_sweep = Some(now + offset);
                return;
            }
            Some(t) if now < t => return,
            Some(_) => {}
        }
        self.next_sweep = Some(now + self.cfg.dht.sweep_interval);
        self.run_sweep(now);
    }

    /// One anti-entropy sweep: send each replica-set peer a digest of the
    /// owned records it should hold, and route a digest of every publication
    /// toward its key's owner. Receivers pull the records they are missing
    /// (or hold stale) and push back fresher copies — see
    /// [`OverlayNode::handle_sync_digest`].
    fn run_sweep(&mut self, now: SimTime) {
        // Owner → replica set: group digest entries per target peer.
        let replication = self.cfg.dht.replication;
        let mut per_peer: BTreeMap<Address, Vec<SyncDigestEntry>> = BTreeMap::new();
        if replication > 1 {
            for key in self.dht.keys() {
                if !self.owns_key(&key) {
                    continue;
                }
                let Some(rec) = self.dht.get(&key).filter(|rec| !rec.expired(now)) else {
                    continue;
                };
                let entry = sync_digest_entry(key, rec, now);
                for peer in self.replica_targets(&key, replication - 1) {
                    per_peer.entry(peer).or_default().push(entry);
                }
            }
        }
        for (peer, entries) in per_peer {
            for chunk in entries.chunks(SYNC_DIGEST_CHUNK) {
                let pkt = RoutedPacket::new(
                    self.cfg.address,
                    peer,
                    DeliveryMode::Exact,
                    RoutedPayload::DhtSyncDigest {
                        entries: chunk.to_vec(),
                        from_owner: true,
                    },
                );
                self.stats.dht_sync_digests += 1;
                self.stats.originated += 1;
                self.route(now, pkt);
            }
        }
        // Publisher → owner: one digest per publication, routed to whichever
        // node currently owns the key. This is what recovers a put that was
        // lost in a crashed hop: the new owner sees a record it does not
        // hold and pulls it, within one sweep instead of the TTL/2 refresh.
        let digests: Vec<(Address, SyncDigestEntry)> = self
            .published
            .iter()
            .map(|(key, p)| {
                let expires_at = p.last_refresh + p.ttl;
                let remaining_ms = expires_at.saturating_since(now).as_nanos() / 1_000_000;
                (
                    *key,
                    SyncDigestEntry {
                        key: *key,
                        version: p.version,
                        value_hash: sync_value_hash(&p.value),
                        ttl_bucket: remaining_ms / crate::dht::SYNC_TTL_BUCKET_MS,
                    },
                )
            })
            .collect();
        for (key, entry) in digests {
            let pkt = RoutedPacket::new(
                self.cfg.address,
                key,
                DeliveryMode::Closest,
                RoutedPayload::DhtSyncDigest {
                    entries: vec![entry],
                    from_owner: false,
                },
            );
            self.stats.dht_sync_digests += 1;
            self.stats.originated += 1;
            self.route(now, pkt);
        }
    }

    /// Compare a received digest against the local store. Records the sender
    /// has fresher are pulled (a `DhtSyncPull` goes back); records *we* hold
    /// fresher are pushed back directly — but only for owner→replica sweeps:
    /// a publisher is not part of the key's copy set, and a conflicting
    /// owner record is the renewal path's business to surface.
    fn handle_sync_digest(
        &mut self,
        now: SimTime,
        entries: &[SyncDigestEntry],
        from_owner: bool,
        src: Address,
    ) {
        let mut pulls: Vec<Address> = Vec::new();
        let mut pushes: Vec<Address> = Vec::new();
        for entry in entries {
            match sync_compare(entry, self.dht.get(&entry.key), now) {
                SyncAction::InSync => {}
                SyncAction::Pull => pulls.push(entry.key),
                SyncAction::Push => {
                    if from_owner {
                        pushes.push(entry.key);
                    }
                }
                SyncAction::Exchange => {
                    // Equal versions, different values: exchange full records
                    // and let byte-level freshness pick one winner everywhere.
                    pulls.push(entry.key);
                    if from_owner {
                        pushes.push(entry.key);
                    }
                }
            }
        }
        for key in pushes {
            let Some(rec) = self.dht.get(&key).filter(|rec| !rec.expired(now)) else {
                continue;
            };
            let (value, ttl_ms, version) =
                (rec.value.clone(), rec.remaining_ttl_ms(now), rec.version);
            let pkt = RoutedPacket::new(
                self.cfg.address,
                src,
                DeliveryMode::Exact,
                RoutedPayload::DhtReplicate {
                    key,
                    value,
                    ttl_ms,
                    version,
                    token: 0,
                },
            );
            self.stats.dht_sync_pushes += 1;
            self.stats.originated += 1;
            self.route(now, pkt);
        }
        if !pulls.is_empty() {
            let pkt = RoutedPacket::new(
                self.cfg.address,
                src,
                DeliveryMode::Exact,
                RoutedPayload::DhtSyncPull { keys: pulls },
            );
            self.stats.originated += 1;
            self.route(now, pkt);
        }
    }

    /// Answer a pull: re-send each requested record — publications through
    /// their refresh path (a put, or an early renewal create for claimed
    /// leases so conflict detection is never bypassed), stored records as
    /// plain replicates.
    fn handle_sync_pull(&mut self, now: SimTime, keys: &[Address], src: Address) {
        for &key in keys {
            if let Some(p) = self.published.get(&key) {
                self.stats.dht_sync_pulls += 1;
                if p.renew_with_create {
                    // Claimed lease: recover through an early renewal create
                    // (unless one is already in flight) so a conflicting
                    // winner is detected, not clobbered.
                    if p.renew_inflight.is_none() {
                        let (value, ttl) = (p.value.clone(), p.ttl);
                        let token = self.fresh_token();
                        if let Some(p) = self.published.get_mut(&key) {
                            p.renew_inflight = Some((token, now));
                        }
                        let ttl_ms = ttl.as_nanos() / 1_000_000;
                        let pkt = RoutedPacket::new(
                            self.cfg.address,
                            key,
                            DeliveryMode::Closest,
                            RoutedPayload::DhtCreate {
                                key,
                                value,
                                ttl_ms,
                                token,
                            },
                        );
                        self.stats.originated += 1;
                        self.route(now, pkt);
                    }
                } else {
                    let (value, ttl, version) = (p.value.clone(), p.ttl, p.version);
                    if let Some(p) = self.published.get_mut(&key) {
                        p.last_refresh = now;
                    }
                    self.stats.dht_refreshes += 1;
                    self.send_put(now, key, value, ttl, version);
                }
                continue;
            }
            let Some(rec) = self.dht.get(&key).filter(|rec| !rec.expired(now)) else {
                continue;
            };
            let (value, ttl_ms, version) =
                (rec.value.clone(), rec.remaining_ttl_ms(now), rec.version);
            let pkt = RoutedPacket::new(
                self.cfg.address,
                src,
                DeliveryMode::Exact,
                RoutedPayload::DhtReplicate {
                    key,
                    value,
                    ttl_ms,
                    version,
                    token: 0,
                },
            );
            self.stats.dht_sync_pulls += 1;
            self.stats.originated += 1;
            self.route(now, pkt);
        }
    }

    /// Merge neighbour knowledge received out of band (the IPOP agent calls this
    /// with candidates learned from peers' connection tables; tests use it to model
    /// gossip without a full message exchange).
    pub fn add_candidate(&mut self, addr: Address, endpoint: Endpoint) {
        if addr != self.cfg.address {
            self.candidates.insert(addr, endpoint);
        }
    }

    // ------------------------------------------------------------------ helpers

    fn send_hello(&mut self, now: SimTime, ep: Endpoint, kind: ConnectionKind) {
        if ep == self.cfg.local_endpoint {
            return;
        }
        let token = self.fresh_token();
        self.pending_links
            .insert(token, PendingLink { kind, started: now });
        let msg = LinkMessage::Hello {
            from: self.cfg.address,
            kind,
            observed: ep,
            token,
        };
        self.push_out(ep, msg);
    }

    fn learn_observed(&mut self, observed: Endpoint) {
        // A peer told us it sees our traffic as coming from `observed`; if that is
        // not an endpoint we already advertise, it is our NAT-translated address.
        if !self.advertised.contains(&observed) {
            self.advertised.push(observed);
            // Keep the list small: local endpoint plus at most three observed ones.
            if self.advertised.len() > 4 {
                self.advertised.remove(1);
            }
        }
    }

    fn push_out(&mut self, ep: Endpoint, msg: LinkMessage) {
        self.stats.link_tx += 1;
        self.outbox.push((ep, msg));
    }

    fn fresh_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use std::net::Ipv4Addr;

    /// A tiny in-memory "physical network": endpoints map straight to nodes, every
    /// message is delivered instantly. NAT/firewall behaviour is tested at the
    /// `ipop` level; here we validate the protocol logic itself.
    struct Harness {
        nodes: Vec<OverlayNode>,
        by_endpoint: Map<Endpoint, usize>,
        crashed: Vec<bool>,
        /// Partition group per node: messages between different groups are
        /// silently dropped (links stay up — the "network split" case, as
        /// opposed to `crash`).
        group: Vec<u8>,
        now: SimTime,
    }

    fn ep(i: usize) -> Endpoint {
        (
            Ipv4Addr::new(10, 0, (i / 200) as u8, (i % 200 + 1) as u8),
            4001,
        )
    }

    impl Harness {
        fn new(n: usize) -> Self {
            Self::with_cfg(n, |c| c)
        }

        /// A harness whose node configs pass through `tweak` (e.g. to shorten
        /// the connection timeout for crash tests).
        fn with_cfg(n: usize, tweak: impl Fn(OverlayConfig) -> OverlayConfig) -> Self {
            let mut nodes = Vec::new();
            let mut by_endpoint = Map::new();
            for i in 0..n {
                let mut rng = StreamRng::new(42, &format!("overlay-test-{i}"));
                let addr = Address::random(&mut rng);
                let bootstrap = if i == 0 { vec![] } else { vec![ep(0)] };
                let cfg = tweak(OverlayConfig::new(addr, ep(i)).with_bootstrap(bootstrap));
                nodes.push(OverlayNode::new(cfg, rng));
                by_endpoint.insert(ep(i), i);
            }
            Harness {
                nodes,
                by_endpoint,
                crashed: vec![false; n],
                group: vec![0; n],
                now: SimTime::ZERO,
            }
        }

        /// Split the network: nodes in `minority` stop exchanging messages
        /// with everyone else until [`Harness::heal`].
        fn partition(&mut self, minority: &[usize]) {
            for &i in minority {
                self.group[i] = 1;
            }
        }

        fn heal(&mut self) {
            self.group.fill(0);
        }

        fn start_all(&mut self) {
            let now = self.now;
            for n in &mut self.nodes {
                n.start(now);
            }
            self.pump();
        }

        /// Kill node `i` without any goodbye: its queued output is discarded
        /// and messages addressed to it disappear.
        fn crash(&mut self, i: usize) {
            self.crashed[i] = true;
            self.by_endpoint.remove(&ep(i));
            let _ = self.nodes[i].take_outbox();
        }

        /// Deliver queued messages until quiescent.
        fn pump(&mut self) {
            for _ in 0..200 {
                let mut any = false;
                for i in 0..self.nodes.len() {
                    if self.crashed[i] {
                        let _ = self.nodes[i].take_outbox();
                        continue;
                    }
                    let out = self.nodes[i].take_outbox();
                    for (dst, msg) in out {
                        any = true;
                        if let Some(&j) = self.by_endpoint.get(&dst) {
                            if self.group[i] != self.group[j] {
                                continue; // partitioned: the message is lost
                            }
                            let from = ep(i);
                            self.nodes[j].on_message(self.now, from, msg);
                        }
                    }
                }
                if !any {
                    break;
                }
            }
        }

        /// Run `ticks` maintenance rounds with message pumping in between.
        fn run(&mut self, ticks: usize) {
            for _ in 0..ticks {
                self.now += Duration::from_millis(500);
                for (i, n) in self.nodes.iter_mut().enumerate() {
                    if !self.crashed[i] {
                        n.on_tick(self.now);
                    }
                }
                self.pump();
            }
        }

        /// Index of the live node whose address is ring-closest to `key`.
        fn owner_of(&self, key: &Address) -> usize {
            (0..self.nodes.len())
                .filter(|&i| !self.crashed[i])
                .min_by_key(|&i| self.nodes[i].address().ring_distance(key))
                .expect("at least one live node")
        }
    }

    #[test]
    fn two_nodes_connect_via_bootstrap() {
        let mut h = Harness::new(2);
        h.start_all();
        assert!(h.nodes[1].is_connected());
        assert!(h.nodes[0].is_connected());
    }

    #[test]
    fn ring_forms_and_ip_tunnel_is_delivered() {
        let mut h = Harness::new(12);
        h.start_all();
        h.run(30);
        // Every node should have near connections on both sides by now.
        for n in &h.nodes {
            assert!(
                n.is_connected(),
                "node {} disconnected",
                n.address().short()
            );
        }
        // Tunnel a payload from node 3 to node 9's exact address.
        let dst = h.nodes[9].address();
        let now = h.now;
        h.nodes[3].send_ip(now, dst, vec![0xAB; 64]);
        h.pump();
        let delivered = h.nodes[9].take_delivered();
        assert_eq!(delivered.len(), 1, "tunnelled packet must arrive");
        assert_eq!(
            delivered[0].payload,
            RoutedPayload::IpTunnel(vec![0xAB; 64].into())
        );
        assert_eq!(delivered[0].src, h.nodes[3].address());
    }

    #[test]
    fn exact_delivery_to_absent_address_is_dropped() {
        let mut h = Harness::new(6);
        h.start_all();
        h.run(15);
        let mut rng = StreamRng::new(7, "absent");
        let absent = Address::random(&mut rng);
        let now = h.now;
        h.nodes[2].send_ip(now, absent, vec![1, 2, 3]);
        h.pump();
        let total_dropped: u64 = h.nodes.iter().map(|n| n.stats().dropped_no_target).sum();
        assert_eq!(total_dropped, 1);
        for n in &mut h.nodes {
            assert!(n.take_delivered().is_empty());
        }
    }

    #[test]
    fn dht_put_then_get_round_trips() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(25);
        let key = Address::from_key(b"172.16.0.55");
        let now = h.now;
        h.nodes[1].dht_put(now, key, b"mapping-value".to_vec());
        h.pump();
        let stored: usize = h.nodes.iter().map(|n| n.dht_stored()).sum();
        assert_eq!(
            stored, 3,
            "the owner stores the key and replicates it to R-1 = 2 neighbours"
        );
        let now = h.now;
        let token = h.nodes[7].dht_get(now, key);
        h.pump();
        let replies = h.nodes[7].take_dht_replies();
        assert_eq!(
            replies,
            vec![(
                token,
                Some(ipop_packet::Bytes::from(b"mapping-value".as_slice()))
            )]
        );
        // A lookup for an unknown key returns None.
        let missing = Address::from_key(b"10.9.9.9");
        let now = h.now;
        let token2 = h.nodes[7].dht_get(now, missing);
        h.pump();
        let replies2 = h.nodes[7].take_dht_replies();
        assert_eq!(replies2, vec![(token2, None)]);
    }

    #[test]
    fn node_departure_is_repaired() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        // Node 5 leaves gracefully.
        let now = h.now;
        h.nodes[5].leave(now);
        h.pump();
        for (i, n) in h.nodes.iter().enumerate() {
            if i != 5 {
                assert!(
                    !n.connections().contains(&h.nodes[5].address()),
                    "node {i} still has an edge to the departed node"
                );
            }
        }
        // The remaining ring still delivers.
        h.run(10);
        let dst = h.nodes[7].address();
        let now = h.now;
        h.nodes[1].send_ip(now, dst, vec![9; 10]);
        h.pump();
        assert_eq!(h.nodes[7].take_delivered().len(), 1);
    }

    #[test]
    fn routing_uses_multiple_hops_and_respects_ttl() {
        let mut h = Harness::new(16);
        h.start_all();
        h.run(30);
        let dst = h.nodes[13].address();
        let now = h.now;
        h.nodes[2].send_ip(now, dst, vec![1; 8]);
        h.pump();
        assert_eq!(h.nodes[13].take_delivered().len(), 1);
        // TTL of zero is dropped immediately when it needs to be forwarded.
        let mut pkt = RoutedPacket::new(
            h.nodes[2].address(),
            dst,
            DeliveryMode::Exact,
            RoutedPayload::IpTunnel(vec![7].into()),
        );
        pkt.hops = 32;
        pkt.ttl = 32;
        let before: u64 = h.nodes.iter().map(|n| n.stats().dropped_ttl).sum();
        let now = h.now;
        let far_ep = ep(2);
        h.nodes[2].on_message(now, far_ep, LinkMessage::Routed(pkt));
        h.pump();
        let after: u64 = h.nodes.iter().map(|n| n.stats().dropped_ttl).sum();
        let delivered = h.nodes[13].take_delivered().len();
        assert!(
            after > before || delivered == 1,
            "either dropped by ttl or node 2 was adjacent"
        );
    }

    #[test]
    fn shortcuts_form_when_enabled() {
        let mut h = Harness::new(20);
        h.start_all();
        h.run(40);
        let far_edges: usize = h
            .nodes
            .iter()
            .map(|n| n.connections().count_kind(ConnectionKind::Far))
            .sum();
        assert!(far_edges > 0, "some shortcut connections should exist");
    }

    /// Regression: a node with free shortcut budget and reachable far targets
    /// must converge to (at least) `max_shortcuts` Far edges. Before the
    /// floored, mantissa-bearing draw in `request_shortcut`, degenerate draws
    /// (distances inside the node's own neighbour gap, or re-draws of already
    /// connected peers) silently burnt maintenance ticks and could pin a node
    /// below its budget indefinitely.
    #[test]
    fn shortcut_budget_converges_to_max_shortcuts() {
        let mut h = Harness::new(32);
        h.start_all();
        h.run(120);
        for (i, n) in h.nodes.iter().enumerate() {
            let far = n.connections().count_kind(ConnectionKind::Far);
            assert!(
                far >= n.config().max_shortcuts,
                "node {i} ({}) stuck at {far}/{} Far edges",
                n.address().short(),
                n.config().max_shortcuts
            );
        }
    }

    #[test]
    fn dht_create_is_create_if_absent() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(25);
        let key = Address::from_key(b"dhcp:172.16.9.10");
        let ttl = Duration::from_secs(600);
        let now = h.now;
        let t1 = h.nodes[2].dht_create(now, key, b"claim-A".to_vec(), ttl);
        h.pump();
        assert_eq!(
            h.nodes[2].take_dht_create_replies(),
            vec![(t1, true, None)],
            "first claim wins"
        );
        let now = h.now;
        let t2 = h.nodes[8].dht_create(now, key, b"claim-B".to_vec(), ttl);
        h.pump();
        assert_eq!(
            h.nodes[8].take_dht_create_replies(),
            vec![(
                t2,
                false,
                Some(ipop_packet::Bytes::from(b"claim-A".as_slice()))
            )],
            "second claim loses and sees the winner's value"
        );
        // The loser did not become a publisher: only the winner refreshes.
        assert_eq!(h.nodes[8].stats().dht_refreshes, 0);
    }

    #[test]
    fn cancelled_create_never_becomes_a_publication() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let key = Address::from_key(b"abandoned-claim");
        let now = h.now;
        let token = h.nodes[2].dht_create(now, key, b"stale".to_vec(), Duration::from_secs(8));
        // The caller gives up before the (successful) reply arrives.
        h.nodes[2].dht_cancel_create(token);
        h.pump();
        // The reply is still surfaced (created=true at the owner)...
        assert_eq!(
            h.nodes[2].take_dht_create_replies(),
            vec![(token, true, None)]
        );
        // ...but the claim was not promoted to a publication: no refresh is
        // ever sent and the record ages out on its own.
        h.run(30); // 15 s > ttl + ttl/2
        assert_eq!(h.nodes[2].stats().dht_refreshes, 0);
        let copies: usize = h
            .nodes
            .iter()
            .map(|n| usize::from(n.dht_store().get(&key).is_some()))
            .sum();
        assert_eq!(copies, 0, "abandoned record expired instead of renewing");
    }

    #[test]
    fn dht_replication_survives_owner_crash() {
        // Short connection timeout so the ring repairs quickly after the crash.
        let mut h = Harness::with_cfg(12, |mut c| {
            c.connection_timeout = Duration::from_secs(5);
            c
        });
        h.start_all();
        h.run(30);
        let key = Address::from_key(b"172.16.9.77");
        let now = h.now;
        // Long TTL so the publisher's TTL/2 refresh cannot repair the loss
        // inside the test window: only replication can.
        h.nodes[1].dht_put_ttl(now, key, b"replicated".to_vec(), Duration::from_secs(3600));
        h.pump();
        h.run(2);
        let copies: usize = h
            .nodes
            .iter()
            .map(|n| usize::from(n.dht_store().get(&key).is_some()))
            .sum();
        assert_eq!(copies, 3, "R = 3 copies exist before the crash");
        let owner = h.owner_of(&key);
        assert!(
            h.nodes[owner].dht_store().get(&key).is_some(),
            "the ring owner holds the record"
        );
        h.crash(owner);
        // Wait out the connection timeout so routing stops pointing at the
        // dead node, then resolve.
        h.run(30);
        let querier = if owner == 4 { 5 } else { 4 };
        let now = h.now;
        let token = h.nodes[querier].dht_get(now, key);
        h.pump();
        assert_eq!(
            h.nodes[querier].take_dht_replies(),
            vec![(
                token,
                Some(ipop_packet::Bytes::from(b"replicated".as_slice()))
            )],
            "a replica serves the record after the owner crashed"
        );
        // The new owner re-replicated: R copies exist again among live nodes.
        let copies: usize = h
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !h.crashed[*i])
            .map(|(_, n)| usize::from(n.dht_store().get(&key).is_some()))
            .sum();
        assert!(copies >= 3, "re-replication restored redundancy: {copies}");
    }

    #[test]
    fn graceful_leave_hands_off_all_records() {
        let mut h = Harness::new(12);
        h.start_all();
        h.run(30);
        // Store several records so the leaving node owns at least one.
        let keys: Vec<Address> = (0..8)
            .map(|i| Address::from_key(format!("172.16.9.{i}").as_bytes()))
            .collect();
        let now = h.now;
        for (i, key) in keys.iter().enumerate() {
            h.nodes[i % 4].dht_put_ttl(now, *key, vec![i as u8; 6], Duration::from_secs(3600));
        }
        h.pump();
        h.run(2);
        let owner = h.owner_of(&keys[0]);
        let owned_before = h.nodes[owner].dht_stored();
        assert!(owned_before > 0, "the leaving node holds records");
        let now = h.now;
        h.nodes[owner].leave(now);
        h.pump();
        h.crashed[owner] = true; // departed: exclude from ownership queries
        h.by_endpoint.remove(&ep(owner));
        assert_eq!(h.nodes[owner].dht_stored(), 0, "handoff cleared the store");
        h.run(5);
        // Every key still resolves from a node that was not involved.
        for key in &keys {
            let querier = (h.owner_of(key) + 1) % h.nodes.len();
            let querier = if h.crashed[querier] {
                (querier + 1) % h.nodes.len()
            } else {
                querier
            };
            let now = h.now;
            let token = h.nodes[querier].dht_get(now, *key);
            h.pump();
            let replies = h.nodes[querier].take_dht_replies();
            assert_eq!(replies.len(), 1);
            assert_eq!(replies[0].0, token);
            assert!(
                replies[0].1.is_some(),
                "record for {key:?} lost in graceful leave"
            );
        }
    }

    #[test]
    fn dht_records_expire_without_refresh_and_survive_with_it() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let fleeting = Address::from_key(b"fleeting");
        let leased = Address::from_key(b"leased");
        let now = h.now;
        h.nodes[1].dht_put_ttl(now, fleeting, b"gone-soon".to_vec(), Duration::from_secs(4));
        h.nodes[1].dht_unpublish(&fleeting); // no renewal: pure soft state
        h.nodes[2].dht_put_ttl(now, leased, b"renewed".to_vec(), Duration::from_secs(4));
        h.pump();
        // 10 s later the unrefreshed record has aged out, the leased one lives.
        h.run(20);
        let now = h.now;
        let t1 = h.nodes[5].dht_get(now, fleeting);
        let t2 = h.nodes[5].dht_get(now, leased);
        h.pump();
        let mut replies = h.nodes[5].take_dht_replies();
        replies.sort_by_key(|(t, _)| *t);
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0], (t1, None), "unrefreshed soft state expired");
        assert_eq!(
            replies[1],
            (t2, Some(ipop_packet::Bytes::from(b"renewed".as_slice()))),
            "TTL/2 refresh kept the lease alive"
        );
        let refreshes: u64 = h.nodes.iter().map(|n| n.stats().dht_refreshes).sum();
        assert!(refreshes >= 2, "refreshes happened: {refreshes}");
        let expired: u64 = h.nodes.iter().map(|n| n.stats().dht_expired).sum();
        assert!(expired >= 1, "expiry swept the dead record: {expired}");
    }

    #[test]
    fn dht_remove_deletes_owner_and_replica_copies() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(25);
        let key = Address::from_key(b"dhcp:release-me");
        let now = h.now;
        h.nodes[3].dht_put_ttl(now, key, b"lease".to_vec(), Duration::from_secs(3600));
        h.pump();
        h.run(2);
        let copies: usize = h
            .nodes
            .iter()
            .map(|n| usize::from(n.dht_store().get(&key).is_some()))
            .sum();
        assert_eq!(copies, 3);
        let now = h.now;
        h.nodes[3].dht_remove(now, key);
        h.pump();
        let copies: usize = h
            .nodes
            .iter()
            .map(|n| usize::from(n.dht_store().get(&key).is_some()))
            .sum();
        assert_eq!(copies, 0, "release removed the owner copy and all replicas");
        // And the publisher no longer refreshes it back into existence.
        h.run(10);
        let copies: usize = h
            .nodes
            .iter()
            .map(|n| usize::from(n.dht_store().get(&key).is_some()))
            .sum();
        assert_eq!(copies, 0);
    }

    /// Number of live copies of `key` across non-crashed nodes.
    fn copies(h: &Harness, key: &Address) -> usize {
        h.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !h.crashed[*i])
            .filter(|(_, n)| n.dht_store().get(key).is_some())
            .count()
    }

    #[test]
    fn quorum_read_serves_freshest_and_repairs_stale_replica() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(25);
        let key = Address::from_key(b"172.16.9.40");
        let now = h.now;
        h.nodes[1].dht_put_ttl(now, key, b"host-A".to_vec(), Duration::from_secs(3600));
        h.pump();
        h.run(2);
        assert_eq!(copies(&h, &key), 3);
        let owner = h.owner_of(&key);
        let holders: Vec<usize> = (0..h.nodes.len())
            .filter(|&i| i != owner && h.nodes[i].dht_store().get(&key).is_some())
            .collect();
        assert_eq!(holders.len(), 2, "two replicas besides the owner");
        // Partition one replica holder away, then overwrite the record at the
        // owner (a Brunet-ARP mapping migrating to a new host). The partitioned
        // replica keeps the stale v1 copy.
        let stale = holders[0];
        h.partition(&[stale]);
        let put = RoutedPacket::new(
            h.nodes[1].address(),
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtPut {
                key,
                value: b"host-B".to_vec().into(),
                ttl_ms: 3_600_000,
                version: 1,
            },
        );
        let now = h.now;
        let owner_ep = ep(99);
        h.nodes[owner].on_message(now, owner_ep, LinkMessage::Routed(put));
        h.pump();
        let stale_rec = h.nodes[stale].dht_store().get(&key).expect("stale copy");
        assert_eq!(
            stale_rec.value,
            ipop_packet::Bytes::from(b"host-A".as_slice()),
            "partitioned replica missed the update"
        );
        let stale_version = stale_rec.version;
        let owner_version = h.nodes[owner].dht_store().get(&key).unwrap().version;
        assert!(
            owner_version > stale_version,
            "owner bumped the version ({owner_version}) over the record it replaced ({stale_version})"
        );
        // Heal, then read through the quorum path: the freshest copy wins and
        // the stale replica is repaired asynchronously.
        h.heal();
        let now = h.now;
        let token = h.nodes[7].dht_get(now, key);
        h.pump();
        assert_eq!(
            h.nodes[7].take_dht_replies(),
            vec![(token, Some(ipop_packet::Bytes::from(b"host-B".as_slice())))],
            "quorum read returns the freshest value"
        );
        let repaired = h.nodes[stale].dht_store().get(&key).expect("repaired copy");
        assert_eq!(
            repaired.value,
            ipop_packet::Bytes::from(b"host-B".as_slice()),
            "read repair replaced the stale replica"
        );
        assert_eq!(repaired.version, owner_version);
        let repairs: u64 = h.nodes.iter().map(|n| n.stats().dht_read_repairs).sum();
        assert!(repairs >= 1, "repair counted: {repairs}");
    }

    #[test]
    fn quorum_create_fails_without_replica_acks() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        // The claimant claims a key it owns itself while partitioned from
        // everyone: the local copy cannot reach a majority of the copy set, so
        // the claim must be rejected and withdrawn, not half-claimed.
        let claimant = 3;
        let key = h.nodes[claimant].address();
        assert_eq!(h.owner_of(&key), claimant);
        h.partition(&[claimant]);
        let now = h.now;
        let token =
            h.nodes[claimant].dht_create(now, key, b"claim".to_vec(), Duration::from_secs(600));
        h.pump();
        assert!(
            h.nodes[claimant].take_dht_create_replies().is_empty(),
            "no premature ack without a write quorum"
        );
        // 10 ticks = 5 s > the 4 s quorum timeout.
        h.run(10);
        assert_eq!(
            h.nodes[claimant].take_dht_create_replies(),
            vec![(token, false, None)],
            "unreplicated claim is rejected"
        );
        assert!(
            h.nodes[claimant].dht_store().get(&key).is_none(),
            "the failed claim was withdrawn from the local store"
        );
        assert!(h.nodes[claimant].stats().dht_quorum_write_timeouts >= 1);
        h.heal();
    }

    #[test]
    fn replica_handoff_to_crashing_peer_is_rereplicated() {
        // Short connection timeout so the ring repairs quickly after the crash.
        let mut h = Harness::with_cfg(12, |mut c| {
            c.connection_timeout = Duration::from_secs(5);
            c
        });
        h.start_all();
        h.run(30);
        let key = Address::from_key(b"172.16.9.123");
        let now = h.now;
        h.nodes[1].dht_put_ttl(now, key, b"handed-off".to_vec(), Duration::from_secs(3600));
        // Publisher renewals cannot repair the loss inside the test window
        // (TTL/2 = 30 min); only handoff + re-replication can.
        h.nodes[1].dht_unpublish(&key);
        h.pump();
        h.run(2);
        let owner = h.owner_of(&key);
        let now = h.now;
        h.nodes[owner].leave(now);
        h.pump();
        h.crashed[owner] = true;
        h.by_endpoint.remove(&ep(owner));
        // The node the handoff made the new owner crashes before it can do
        // anything at all — not even one maintenance tick.
        let new_owner = h.owner_of(&key);
        assert!(
            h.nodes[new_owner].dht_store().get(&key).is_some(),
            "handoff reached the next owner"
        );
        h.crash(new_owner);
        // Ring repair + re-replication by the surviving holder(s).
        h.run(30);
        assert!(
            copies(&h, &key) >= 2,
            "the surviving holder re-replicated: {} copies",
            copies(&h, &key)
        );
        let querier = (0..h.nodes.len())
            .find(|&i| !h.crashed[i] && i != h.owner_of(&key))
            .unwrap();
        let now = h.now;
        let token = h.nodes[querier].dht_get(now, key);
        h.pump();
        assert_eq!(
            h.nodes[querier].take_dht_replies(),
            vec![(
                token,
                Some(ipop_packet::Bytes::from(b"handed-off".as_slice()))
            )],
            "the record survived both the leave and the immediate crash"
        );
    }

    #[test]
    fn lease_renewal_timeout_reclaims_instead_of_dropping() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let key = Address::from_key(b"dhcp:172.16.9.9");
        let now = h.now;
        // TTL 8 s → renewal due at 4 s.
        let token = h.nodes[2].dht_create(now, key, b"me".to_vec(), Duration::from_secs(8));
        h.pump();
        assert_eq!(
            h.nodes[2].take_dht_create_replies(),
            vec![(token, true, None)]
        );
        // Cut the claimant off: its renewal create is lost, the reply never
        // arrives. After the renewal timeout it must alarm and re-issue, not
        // silently let the lease expire while keeping the address.
        h.partition(&[2]);
        // 30 ticks = 15 s: past renewal due (4 s) and renewal timeout (10 s).
        h.run(30);
        assert!(
            h.nodes[2].stats().dht_renewal_timeouts >= 1,
            "lost renewal reply alarmed"
        );
        h.heal();
        // Long enough for the next renewal-timeout re-issue to fire and land.
        h.run(25);
        // The re-issued renewal re-claimed the (by now expired) key: the
        // record is live again and the claimant still owns it.
        let now = h.now;
        let t2 = h.nodes[5].dht_get(now, key);
        h.pump();
        assert_eq!(
            h.nodes[5].take_dht_replies(),
            vec![(t2, Some(ipop_packet::Bytes::from(b"me".as_slice())))],
            "the lease survived the lost renewal reply"
        );
    }

    #[test]
    fn conflicting_renewal_surfaces_lost_lease() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let key = Address::from_key(b"dhcp:172.16.9.10");
        let now = h.now;
        let token = h.nodes[2].dht_create(now, key, b"claim-A".to_vec(), Duration::from_secs(8));
        h.pump();
        assert_eq!(
            h.nodes[2].take_dht_create_replies(),
            vec![(token, true, None)]
        );
        // Another publisher overwrites the record with a fresher version (the
        // healed-partition winner); the loser's next renewal must discover the
        // conflict and surface the lost lease instead of clobbering it.
        let owner = h.owner_of(&key);
        let put = RoutedPacket::new(
            h.nodes[6].address(),
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtPut {
                key,
                value: b"claim-B".to_vec().into(),
                ttl_ms: 600_000,
                version: 5,
            },
        );
        let now = h.now;
        let fake_ep = ep(98);
        h.nodes[owner].on_message(now, fake_ep, LinkMessage::Routed(put));
        h.pump();
        // 10 ticks = 5 s: past the 4 s renewal point of the 8 s lease.
        h.run(10);
        assert_eq!(
            h.nodes[2].take_lost_leases(),
            vec![key],
            "the losing claim is surfaced to the agent"
        );
        assert_eq!(h.nodes[2].stats().dht_leases_lost, 1);
        // And the winner's record was not clobbered by the loser's renewal.
        let owner_now = h.owner_of(&key);
        assert_eq!(
            h.nodes[owner_now].dht_store().get(&key).unwrap().value,
            ipop_packet::Bytes::from(b"claim-B".as_slice())
        );
    }

    /// A single started node with one faked established peer, for white-box
    /// message-level tests ((`node`, own address, peer address)).
    fn node_with_peer() -> (OverlayNode, Address, Address) {
        let mut rng = StreamRng::new(77, "whitebox");
        let addr = Address::random(&mut rng);
        let mut node = OverlayNode::new(OverlayConfig::new(addr, ep(0)), rng);
        node.start(SimTime::ZERO);
        let peer = Address::from_key(b"remote-peer");
        node.on_message(
            SimTime::ZERO,
            ep(1),
            LinkMessage::Hello {
                from: peer,
                kind: ConnectionKind::Near,
                observed: ep(0),
                token: 1,
            },
        );
        let _ = node.take_outbox();
        (node, addr, peer)
    }

    /// Tokens of `DhtCreate` payloads in a drained outbox.
    fn create_tokens(out: &[(Endpoint, LinkMessage)]) -> Vec<u64> {
        out.iter()
            .filter_map(|(_, msg)| match msg {
                LinkMessage::Routed(pkt) => match &pkt.payload {
                    RoutedPayload::DhtCreate { token, .. } => Some(*token),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn quorum_failed_renewal_keeps_the_lease() {
        // A renewal answered `created: false` with NO existing value is a
        // write-quorum failure at the coordinator, not a conflict: the lease
        // must be kept and retried, not surfaced as lost. Only a reply
        // carrying the winner's value means the lease is gone.
        let (mut node, addr, peer) = node_with_peer();
        let key = peer; // owned by the remote peer, so traffic routes out
        let t0 = SimTime::ZERO;
        let claim_token = node.dht_create(t0, key, b"mine".to_vec(), Duration::from_secs(8));
        let _ = node.take_outbox();
        let reply = |token, created, existing: Option<&[u8]>| {
            LinkMessage::Routed(RoutedPacket::new(
                peer,
                addr,
                DeliveryMode::Exact,
                RoutedPayload::DhtCreateReply {
                    token,
                    created,
                    existing: existing.map(ipop_packet::Bytes::from),
                },
            ))
        };
        node.on_message(t0, ep(1), reply(claim_token, true, None));
        assert_eq!(
            node.take_dht_create_replies(),
            vec![(claim_token, true, None)]
        );
        // TTL/2 later the renewal create goes out.
        let t1 = t0 + Duration::from_secs(4);
        node.on_tick(t1);
        let renew = create_tokens(&node.take_outbox());
        assert_eq!(renew.len(), 1, "one renewal create issued");
        // Quorum failure: keep the lease, no lost-lease event.
        node.on_message(t1, ep(1), reply(renew[0], false, None));
        assert!(
            node.take_lost_leases().is_empty(),
            "lease kept on quorum failure"
        );
        assert_eq!(node.stats().dht_leases_lost, 0);
        // The renewal timeout re-issues and alarms.
        let t2 = t1 + Duration::from_secs(11);
        node.on_tick(t2);
        assert!(node.stats().dht_renewal_timeouts >= 1);
        let renew2 = create_tokens(&node.take_outbox());
        assert_eq!(renew2.len(), 1, "renewal re-issued after the timeout");
        // A genuine conflict (winner's value attached) loses the lease.
        node.on_message(t2, ep(1), reply(renew2[0], false, Some(b"theirs")));
        assert_eq!(node.take_lost_leases(), vec![key]);
        assert_eq!(node.stats().dht_leases_lost, 1);
        // And no further renewals are issued for the dropped publication.
        node.on_tick(t2 + Duration::from_secs(20));
        assert!(create_tokens(&node.take_outbox()).is_empty());
    }

    #[test]
    fn replica_reports_not_stored_for_conflicting_pushes_and_honors_withdraw() {
        let (mut node, addr, peer) = node_with_peer();
        let key = Address::from_key(b"contested");
        let t0 = SimTime::ZERO;
        let replicate = |value: &[u8], version, token| {
            LinkMessage::Routed(RoutedPacket::new(
                peer,
                addr,
                DeliveryMode::Exact,
                RoutedPayload::DhtReplicate {
                    key,
                    value: ipop_packet::Bytes::from(value),
                    ttl_ms: 60_000,
                    version,
                    token,
                },
            ))
        };
        let acks = |out: &[(Endpoint, LinkMessage)]| -> Vec<(u64, bool)> {
            out.iter()
                .filter_map(|(_, msg)| match msg {
                    LinkMessage::Routed(pkt) => match &pkt.payload {
                        RoutedPayload::DhtReplicateAck { token, stored } => Some((*token, *stored)),
                        _ => None,
                    },
                    _ => None,
                })
                .collect()
        };
        // Fresh store: acked as stored.
        node.on_message(t0, ep(1), replicate(b"claim-A", 2, 7));
        assert_eq!(acks(&node.take_outbox()), vec![(7, true)]);
        // A staler conflicting push is refused — and the ack says so, so it
        // cannot count toward the pusher's write quorum.
        node.on_message(t0, ep(1), replicate(b"claim-B", 1, 8));
        assert_eq!(acks(&node.take_outbox()), vec![(8, false)]);
        assert_eq!(
            node.dht_store().get(&key).unwrap().value,
            ipop_packet::Bytes::from(b"claim-A".as_slice())
        );
        // Withdrawing the losing value, or the stored value at a different
        // version (a delayed withdraw racing a re-claim), is a no-op; only
        // the exact (value, version) pair removes the record.
        let withdraw = |value: &[u8], version| {
            LinkMessage::Routed(RoutedPacket::new(
                peer,
                addr,
                DeliveryMode::Exact,
                RoutedPayload::DhtWithdraw {
                    key,
                    value: ipop_packet::Bytes::from(value),
                    version,
                },
            ))
        };
        node.on_message(t0, ep(1), withdraw(b"claim-B", 1));
        assert!(node.dht_store().get(&key).is_some(), "winner survives");
        node.on_message(t0, ep(1), withdraw(b"claim-A", 1));
        assert!(
            node.dht_store().get(&key).is_some(),
            "stale-version withdraw cannot delete the re-claimed record"
        );
        node.on_message(t0, ep(1), withdraw(b"claim-A", 2));
        assert!(node.dht_store().get(&key).is_none(), "withdrawn claim gone");
    }

    #[test]
    fn link_monitor_detects_dead_edge_within_seconds() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(25);
        let victim = 4;
        let peers_of_victim: Vec<usize> = (0..h.nodes.len())
            .filter(|&i| {
                i != victim
                    && h.nodes[i]
                        .connections()
                        .contains(&h.nodes[victim].address())
            })
            .collect();
        assert!(!peers_of_victim.is_empty(), "victim had edges");
        h.crash(victim);
        // 20 ticks = 10 s: far less than the 45 s connection timeout, ample
        // for probe_interval + probe_failure_limit adaptive misses.
        h.run(20);
        let victim_addr = h.nodes[victim].address();
        for i in 0..h.nodes.len() {
            if i != victim && !h.crashed[i] {
                assert!(
                    !h.nodes[i].connections().contains(&victim_addr),
                    "node {i} still routes into the crashed peer 10 s later"
                );
            }
        }
        let detected: u64 = h
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !h.crashed[*i])
            .map(|(_, n)| n.stats().dead_edges_detected)
            .sum();
        assert!(detected >= 1, "the link monitor declared the edges dead");
        let probes: u64 = h.nodes.iter().map(|n| n.stats().link_probes_sent).sum();
        assert!(probes >= 1, "probes were sent to the silent peer");
    }

    #[test]
    fn link_monitor_is_quiet_on_healthy_edges() {
        // Gossip refreshes last_heard every tick, so a healthy steady-state
        // overlay sends (almost) no probes and never declares an edge dead.
        let mut h = Harness::new(8);
        h.start_all();
        h.run(40);
        let detected: u64 = h.nodes.iter().map(|n| n.stats().dead_edges_detected).sum();
        assert_eq!(detected, 0, "no false positives on live edges");
        let timeouts: u64 = h.nodes.iter().map(|n| n.stats().link_probe_timeouts).sum();
        assert_eq!(timeouts, 0, "no probe ever missed its deadline");
    }

    #[test]
    fn phi_verdict_adapts_to_observed_loss() {
        // A clean window sits on the loss floor: two phi units per miss, so
        // three consecutive silent misses cross the default threshold of 6 —
        // bit-identical to the old fixed limit.
        let mut clean = EdgeHealth::default();
        clean.phi_per_miss = -clean.loss_estimate().log10();
        for _ in 0..3 {
            clean.failures += 1;
            clean.record_outcome(true);
        }
        assert!(clean.phi() >= 6.0, "clean edge: 3 misses suffice");

        // A window that has watched one probe exchange in five vanish sits on
        // the loss cap: one phi unit per miss, so the same three misses stay
        // well under the threshold and only six reach it.
        let mut lossy = EdgeHealth::default();
        for i in 0..30 {
            lossy.record_outcome(i % 5 == 0);
        }
        lossy.phi_per_miss = -lossy.loss_estimate().log10();
        for _ in 0..3 {
            lossy.failures += 1;
            lossy.record_outcome(true);
        }
        assert!(lossy.phi() < 6.0, "lossy edge: 3 misses are not a verdict");
        for _ in 0..3 {
            lossy.failures += 1;
            lossy.record_outcome(true);
        }
        assert!(lossy.phi() >= 6.0, "lossy edge: 6 misses are");
    }

    #[test]
    fn stalled_monitor_clamps_deadlines_instead_of_charging_misses() {
        let mut h = Harness::new(4);
        h.start_all();
        h.run(20);
        let victim = 2;
        h.crash(victim);
        // Three ticks: the silent peer's edges go idle past probe_interval
        // and probes are armed (the initial deadline is one second, so no
        // miss has been charged yet).
        h.run(3);
        let probes: u64 = h.nodes.iter().map(|n| n.stats().link_probes_sent).sum();
        assert!(probes >= 1, "a probe went out to the silent peer");
        // Every node stalls for six seconds (a CPU-starved host): the armed
        // deadlines expire inside the gap. The next monitor pass must clamp
        // them forward instead of charging the peers misses.
        h.now += Duration::from_secs(6);
        h.run(1);
        let clamps: u64 = h
            .nodes
            .iter()
            .map(|n| n.stats().link_probe_deadline_clamps)
            .sum();
        assert!(clamps >= 1, "the stalled watchers clamped their deadlines");
        let timeouts: u64 = h.nodes.iter().map(|n| n.stats().link_probe_timeouts).sum();
        assert_eq!(timeouts, 0, "no miss was charged straight out of the stall");
        let dead: u64 = h.nodes.iter().map(|n| n.stats().dead_edges_detected).sum();
        assert_eq!(dead, 0, "no verdict straight out of the stall");
        // The clamp only defers: with ticks back to normal the genuinely
        // crashed peer is still detected dead within seconds.
        h.run(20);
        let dead: u64 = h.nodes.iter().map(|n| n.stats().dead_edges_detected).sum();
        assert!(
            dead >= 1,
            "the crashed peer was still detected after the stall"
        );
    }

    #[test]
    fn link_monitor_disabled_keeps_edges_until_connection_timeout() {
        let mut h = Harness::with_cfg(8, |c| c.without_link_monitor());
        h.start_all();
        h.run(20);
        let victim = 3;
        let victim_addr = h.nodes[victim].address();
        h.crash(victim);
        h.run(20); // 10 s — far short of the 45 s timeout
        let still_pointing = (0..h.nodes.len())
            .filter(|&i| i != victim && h.nodes[i].connections().contains(&victim_addr))
            .count();
        assert!(
            still_pointing > 0,
            "without the monitor the dead edges linger (the pre-PR behaviour)"
        );
        let probes: u64 = h.nodes.iter().map(|n| n.stats().link_probes_sent).sum();
        assert_eq!(probes, 0, "no probes with the monitor disabled");
    }

    #[test]
    fn anti_entropy_converges_diverged_replica_without_reads() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(25);
        let key = Address::from_key(b"172.16.9.60");
        let now = h.now;
        h.nodes[1].dht_put_ttl(now, key, b"host-A".to_vec(), Duration::from_secs(3600));
        h.pump();
        h.run(2);
        assert_eq!(copies(&h, &key), 3);
        let owner = h.owner_of(&key);
        let holders: Vec<usize> = (0..h.nodes.len())
            .filter(|&i| i != owner && h.nodes[i].dht_store().get(&key).is_some())
            .collect();
        // Partition one replica holder (no ticks run, so its edges survive),
        // overwrite the record at the owner, heal: the replica now holds a
        // stale v1 copy and nothing ever reads the key.
        let stale = holders[0];
        h.partition(&[stale]);
        let put = RoutedPacket::new(
            h.nodes[1].address(),
            key,
            DeliveryMode::Closest,
            RoutedPayload::DhtPut {
                key,
                value: b"host-B".to_vec().into(),
                ttl_ms: 3_600_000,
                version: 1,
            },
        );
        let now = h.now;
        let fake_ep = ep(97);
        h.nodes[owner].on_message(now, fake_ep, LinkMessage::Routed(put));
        h.pump();
        assert_eq!(
            h.nodes[stale].dht_store().get(&key).unwrap().value,
            ipop_packet::Bytes::from(b"host-A".as_slice()),
            "partitioned replica missed the overwrite"
        );
        h.heal();
        // Up to one random sweep offset plus one interval: 2 × 10 s = 40 ticks.
        h.run(45);
        let repaired = h.nodes[stale].dht_store().get(&key).expect("still held");
        assert_eq!(
            repaired.value,
            ipop_packet::Bytes::from(b"host-B".as_slice()),
            "the sweep converged the stale replica with no read in sight"
        );
        let digests: u64 = h.nodes.iter().map(|n| n.stats().dht_sync_digests).sum();
        assert!(digests >= 1, "digests flowed: {digests}");
        let reads: u64 = h.nodes.iter().map(|n| n.stats().dht_quorum_reads).sum();
        assert_eq!(reads, 0, "no read repaired it — anti-entropy did");
    }

    #[test]
    fn put_through_crashed_hop_is_recovered_within_a_sweep() {
        let mut h = Harness::new(12);
        h.start_all();
        h.run(30);
        // The key is a node's own address, so that node is its ring owner.
        let owner = 7;
        let key = h.nodes[owner].address();
        assert_eq!(h.owner_of(&key), owner);
        // The owner crashes; before anyone notices, a publisher stores a
        // record under the key. Greedy routing forwards the put straight into
        // the dead node: the record is lost in flight. The TTL is an hour, so
        // the publisher's TTL/2 refresh cannot repair it inside the test —
        // recovery (≤ ~25 s) beats both that and the 45 s timeout.
        h.crash(owner);
        let publisher = 2;
        assert_ne!(publisher, owner);
        let now = h.now;
        h.nodes[publisher].dht_put_ttl(now, key, b"survivor".to_vec(), Duration::from_secs(3600));
        h.pump();
        assert_eq!(copies(&h, &key), 0, "the put died in the crashed hop");
        // Link monitor kills the dead edges (~7 s), then the publisher's next
        // sweep digest reaches the new owner, which pulls the record.
        // Random sweep offset (≤10 s) + interval (10 s) + detection: 50 ticks = 25 s.
        h.run(50);
        assert!(
            copies(&h, &key) >= 1,
            "the publisher sweep recovered the lost put"
        );
        let querier = 5;
        let now = h.now;
        let token = h.nodes[querier].dht_get(now, key);
        h.pump();
        assert_eq!(
            h.nodes[querier].take_dht_replies(),
            vec![(
                token,
                Some(ipop_packet::Bytes::from(b"survivor".as_slice()))
            )],
            "the record resolves again within one sweep interval"
        );
        let pulls: u64 = h.nodes.iter().map(|n| n.stats().dht_sync_pulls).sum();
        assert!(pulls >= 1, "recovery went through the pull path: {pulls}");
    }

    #[test]
    fn healed_partition_remerges_via_bootstrap_heartbeat() {
        // A long partition plus fast dead-edge detection scrubs each side's
        // knowledge of the other completely (edges dropped, candidates
        // purged, gossip dried up). The bootstrap re-link heartbeat must
        // re-merge the sub-rings after the heal.
        let mut h = Harness::new(12);
        h.start_all();
        h.run(25);
        let minority = [8usize, 9, 10];
        h.partition(&minority);
        // 30 ticks = 15 s: the monitor kills every cross-group edge and each
        // side re-forms its own ring.
        h.run(30);
        for &i in &minority {
            for j in 0..h.nodes.len() {
                if !minority.contains(&j) {
                    assert!(
                        !h.nodes[i].connections().contains(&h.nodes[j].address()),
                        "cross-partition edge {i}->{j} survived the monitor"
                    );
                }
            }
        }
        h.heal();
        // 70 ticks = 35 s ≥ the 30 s heartbeat: the minority re-links to the
        // bootstrap's component and gossip merges the rings.
        h.run(70);
        let bridged = minority.iter().any(|&i| {
            (0..h.nodes.len())
                .filter(|j| !minority.contains(j))
                .any(|j| h.nodes[i].connections().contains(&h.nodes[j].address()))
        });
        assert!(bridged, "the healed sides re-linked");
        // And traffic crosses the merged ring again.
        let dst = h.nodes[2].address();
        let now = h.now;
        h.nodes[9].send_ip(now, dst, vec![0x42; 16]);
        h.pump();
        assert_eq!(
            h.nodes[2].take_delivered().len(),
            1,
            "minority-to-majority delivery works after the heal"
        );
    }

    #[test]
    fn isolated_node_cannot_self_acknowledge_quorum_writes() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        // Cut a node off and let the link monitor empty its table: with zero
        // peers its single copy must not satisfy a write quorum of a copy
        // set that is supposed to span three nodes.
        let claimant = 3;
        h.partition(&[claimant]);
        h.run(25);
        assert_eq!(
            h.nodes[claimant].connections().established().count(),
            0,
            "the monitor dropped every edge of the isolated node"
        );
        let key = Address::from_key(b"dhcp:172.16.9.66");
        let now = h.now;
        let token =
            h.nodes[claimant].dht_create(now, key, b"mine".to_vec(), Duration::from_secs(600));
        h.pump();
        assert_eq!(
            h.nodes[claimant].take_dht_create_replies(),
            vec![(token, false, None)],
            "the isolated claim fails retryably instead of self-acking"
        );
        assert!(
            h.nodes[claimant].dht_store().get(&key).is_none(),
            "no half-claimed record lingers"
        );
        assert!(h.nodes[claimant].stats().dht_quorum_write_timeouts >= 1);
        h.heal();
    }

    #[test]
    fn quorum_disabled_falls_back_to_single_node_ops() {
        // The ablation switch: with quorum off, the key's owner answers
        // creates and gets alone from its local store (the pre-quorum
        // behaviour), while fire-and-forget replication still runs.
        let mut h = Harness::with_cfg(10, |c| c.without_dht_quorum());
        h.start_all();
        h.run(25);
        let key = Address::from_key(b"ablation:172.16.9.50");
        let now = h.now;
        let t1 = h.nodes[2].dht_create(now, key, b"claim".to_vec(), Duration::from_secs(600));
        h.pump();
        assert_eq!(
            h.nodes[2].take_dht_create_replies(),
            vec![(t1, true, None)],
            "owner acknowledges alone with quorum disabled"
        );
        assert_eq!(copies(&h, &key), 3, "replication still fans out");
        let quorum_writes: u64 = h.nodes.iter().map(|n| n.stats().dht_quorum_writes).sum();
        assert_eq!(quorum_writes, 0, "no quorum machinery engaged");
        let now = h.now;
        let t2 = h.nodes[7].dht_get(now, key);
        h.pump();
        assert_eq!(
            h.nodes[7].take_dht_replies(),
            vec![(t2, Some(ipop_packet::Bytes::from(b"claim".as_slice())))]
        );
        let quorum_reads: u64 = h.nodes.iter().map(|n| n.stats().dht_quorum_reads).sum();
        assert_eq!(quorum_reads, 0, "gets answered from the local store alone");
    }

    #[test]
    fn observed_endpoint_learning() {
        // A node told about a different observed endpoint starts advertising it.
        let mut rng = StreamRng::new(1, "obs");
        let addr = Address::random(&mut rng);
        let mut node = OverlayNode::new(OverlayConfig::new(addr, ep(0)), rng);
        node.start(SimTime::ZERO);
        let translated = (Ipv4Addr::new(128, 227, 56, 1), 20_001);
        let peer_addr = Address::from_key(b"peer");
        node.on_message(
            SimTime::ZERO,
            ep(1),
            LinkMessage::Hello {
                from: peer_addr,
                kind: ConnectionKind::Leaf,
                observed: translated,
                token: 5,
            },
        );
        assert!(node.advertised_endpoints().contains(&translated));
        assert!(node.advertised_endpoints().contains(&ep(0)));
    }

    #[test]
    fn pubsub_publish_reaches_every_subscriber() {
        let mut h = Harness::new(12);
        h.start_all();
        h.run(30);
        let topic = crate::pubsub::topic_key("chat");
        let subscribers = [1usize, 3, 5, 7, 9, 11];
        let now = h.now;
        for &i in &subscribers {
            h.nodes[i].pubsub_subscribe(now, topic, Duration::from_secs(60));
        }
        h.pump();
        // The topic record lives at the key's ring owner and replicates.
        let root = h.owner_of(&topic);
        assert!(h.nodes[root].dht_store().get(&topic).is_some());
        let now = h.now;
        let msg_id = h.nodes[2].pubsub_publish(now, topic, b"hello room".to_vec());
        h.pump();
        for &i in &subscribers {
            let got = h.nodes[i].take_pubsub_delivered();
            assert_eq!(
                got,
                vec![(topic, msg_id, Bytes::from(b"hello room".as_slice()))],
                "subscriber {i} missed the publish"
            );
        }
        // Non-subscribers got nothing.
        for i in [0usize, 2, 4] {
            assert!(h.nodes[i].take_pubsub_delivered().is_empty());
        }
        // The relay tree stayed bounded: no node sent more than
        // `pubsub_fanout` deliveries for the single publish.
        for n in &h.nodes {
            assert!(n.stats().pubsub_fanout_sent <= n.config().pubsub_fanout as u64);
        }
        let relayed: u64 = h.nodes.iter().map(|n| n.stats().pubsub_relayed).sum();
        assert!(relayed >= 1, "6 subscribers at fanout 4 need relaying");
    }

    #[test]
    fn pubsub_unsubscribe_stops_delivery() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(25);
        let topic = crate::pubsub::topic_key("ephemeral");
        let now = h.now;
        h.nodes[2].pubsub_subscribe(now, topic, Duration::from_secs(60));
        h.nodes[5].pubsub_subscribe(now, topic, Duration::from_secs(60));
        h.pump();
        let now = h.now;
        h.nodes[2].pubsub_unsubscribe(now, topic);
        h.pump();
        let now = h.now;
        h.nodes[6].pubsub_publish(now, topic, vec![1, 2, 3]);
        h.pump();
        assert!(h.nodes[2].take_pubsub_delivered().is_empty());
        assert_eq!(h.nodes[5].take_pubsub_delivered().len(), 1);
        // Last subscriber out deletes the record everywhere.
        let now = h.now;
        h.nodes[5].pubsub_unsubscribe(now, topic);
        h.pump();
        h.run(2);
        let stored: usize = h
            .nodes
            .iter()
            .filter(|n| n.dht_store().get(&topic).is_some())
            .count();
        assert_eq!(stored, 0, "empty topic record must be removed");
    }

    #[test]
    fn pubsub_root_crash_rehomes_subscriptions() {
        let mut h = Harness::new(10);
        h.start_all();
        h.run(30);
        let topic = crate::pubsub::topic_key("durable");
        let root = h.owner_of(&topic);
        // Everyone except the root subscribes, with a short TTL so renewals
        // fire within a few seconds.
        let subscribers: Vec<usize> = (0..h.nodes.len()).filter(|&i| i != root).collect();
        let now = h.now;
        for &i in &subscribers {
            h.nodes[i].pubsub_subscribe(now, topic, Duration::from_secs(8));
        }
        h.pump();
        h.crash(root);
        // 30 ticks = 15 s: the ring repairs, dead edges are scrubbed, and
        // every subscription passes its TTL/2 renewal — which routes to the
        // key's *new* owner.
        h.run(30);
        let now = h.now;
        let publisher = subscribers[0];
        let msg_id = h.nodes[publisher].pubsub_publish(now, topic, b"after crash".to_vec());
        h.pump();
        for &i in &subscribers {
            let got = h.nodes[i].take_pubsub_delivered();
            assert!(
                got.contains(&(topic, msg_id, Bytes::from(b"after crash".as_slice()))),
                "subscriber {i} lost its subscription to the root crash"
            );
        }
    }

    #[test]
    fn pubsub_dead_subscriber_is_pruned_from_topic_record() {
        // 4 nodes form a full mesh, so the topic root holds a direct edge to
        // every subscriber and the link monitor's verdict reaches the record.
        let mut h = Harness::new(4);
        h.start_all();
        h.run(25);
        let topic = crate::pubsub::topic_key("pruned");
        let now = h.now;
        for i in 0..4 {
            h.nodes[i].pubsub_subscribe(now, topic, Duration::from_secs(600));
        }
        h.pump();
        let root = h.owner_of(&topic);
        let victim = (0..4).find(|&i| i != root).unwrap();
        let victim_addr = h.nodes[victim].address();
        h.crash(victim);
        h.run(25);
        let now = h.now;
        let entries = h.nodes[root].pubsub_live_entries(now, &topic);
        assert!(
            !entries.iter().any(|(a, _)| *a == victim_addr),
            "crashed subscriber still in the topic record"
        );
        let pruned: u64 = h
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !h.crashed[*i])
            .map(|(_, n)| n.stats().pubsub_pruned)
            .sum();
        assert!(pruned >= 1, "the dead-edge verdict pruned the subscriber");
    }

    #[test]
    fn pubsub_deliver_to_absent_head_salvages_delegation() {
        // A Deliver whose Exact target is not in the overlay ends at the
        // ring-closest node, which must re-fan the delegated chunk instead of
        // dropping it with the head.
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let topic = crate::pubsub::topic_key("salvage-direct");
        let mut rng = StreamRng::new(9, "absent-head");
        let absent = Address::random(&mut rng);
        let relay_to = vec![h.nodes[2].address(), h.nodes[6].address()];
        let pkt = RoutedPacket::new(
            h.nodes[0].address(),
            absent,
            DeliveryMode::Exact,
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id: 42,
                relay_to,
                payload: vec![7, 7].into(),
            },
        );
        let now = h.now;
        h.nodes[0].route(now, pkt);
        h.pump();
        assert_eq!(h.nodes[2].take_pubsub_delivered().len(), 1);
        assert_eq!(h.nodes[6].take_pubsub_delivered().len(), 1);
        let salvaged: u64 = h.nodes.iter().map(|n| n.stats().pubsub_salvaged).sum();
        assert_eq!(salvaged, 1, "exactly one node salvaged the delegation");
    }

    #[test]
    fn pubsub_fanout_survives_a_crashed_subscriber() {
        let mut h = Harness::new(12);
        h.start_all();
        h.run(30);
        let topic = crate::pubsub::topic_key("salvage");
        let subscribers = [1usize, 3, 5, 7, 9, 11];
        let now = h.now;
        for &i in &subscribers {
            h.nodes[i].pubsub_subscribe(now, topic, Duration::from_secs(600));
        }
        h.pump();
        // Kill one subscriber and publish immediately — before any TTL,
        // renewal or dead-edge verdict can remove it from the record. Its
        // delegated chunk must still reach everyone else via the salvage
        // path at the ring-closest node.
        let victim = 5;
        h.crash(victim);
        h.run(22); // let the monitor scrub the dead edges so routing moves on
        let now = h.now;
        let msg_id = h.nodes[0].pubsub_publish(now, topic, b"survivors".to_vec());
        h.pump();
        for &i in &subscribers {
            if i == victim {
                continue;
            }
            let got = h.nodes[i].take_pubsub_delivered();
            assert!(
                got.contains(&(topic, msg_id, Bytes::from(b"survivors".as_slice()))),
                "live subscriber {i} lost the message to the dead chunk head"
            );
        }
    }

    #[test]
    fn virtual_stream_transfers_bytes_across_the_ring() {
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let dst = h.nodes[6].address();
        let now = h.now;
        let sid = h.nodes[1].stream_connect(now, dst);
        h.pump();
        assert_eq!(
            h.nodes[6].take_stream_accepted(),
            vec![(h.nodes[1].address(), sid)]
        );
        let body: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        let now = h.now;
        assert!(h.nodes[1].stream_send(now, dst, sid, body.clone()));
        h.nodes[1].stream_close(now, dst, sid);
        h.run(4);
        let got: Vec<u8> = h.nodes[6]
            .take_stream_data()
            .into_iter()
            .flat_map(|(_, _, c)| c.to_vec())
            .collect();
        assert_eq!(got, body, "stream bytes arrive complete and in order");
        assert!(h.nodes[6]
            .take_stream_events()
            .iter()
            .any(|e| matches!(e, StreamEvent::RemoteClosed { .. })));
        assert!(h.nodes[1]
            .take_stream_events()
            .iter()
            .any(|e| matches!(e, StreamEvent::Closed { .. })));
        assert_eq!(h.nodes[1].stats().stream_opened, 1);
        assert_eq!(h.nodes[6].stats().stream_accepted, 1);
        assert_eq!(h.nodes[6].stats().stream_closed, 1);
    }

    #[test]
    fn simultaneous_stream_opens_in_both_directions_do_not_collide() {
        let mut h = Harness::new(2);
        h.start_all();
        let (a0, a1) = (h.nodes[0].address(), h.nodes[1].address());
        let now = h.now;
        // Both sides open with the same token counter value; the parity bit
        // keeps the ids distinct in each other's (remote, id) tables.
        let s01 = h.nodes[0].stream_connect(now, a1);
        let s10 = h.nodes[1].stream_connect(now, a0);
        h.pump();
        let now = h.now;
        assert!(h.nodes[0].stream_send(now, a1, s01, b"zero to one".to_vec()));
        assert!(h.nodes[1].stream_send(now, a0, s10, b"one to zero".to_vec()));
        h.pump();
        let at1: Vec<u8> = h.nodes[1]
            .take_stream_data()
            .into_iter()
            .flat_map(|(_, _, c)| c.to_vec())
            .collect();
        let at0: Vec<u8> = h.nodes[0]
            .take_stream_data()
            .into_iter()
            .flat_map(|(_, _, c)| c.to_vec())
            .collect();
        assert_eq!(at1, b"zero to one");
        assert_eq!(at0, b"one to zero");
        assert_eq!(h.nodes[0].take_stream_accepted(), vec![(a1, s10)]);
        assert_eq!(h.nodes[1].take_stream_accepted(), vec![(a0, s01)]);
    }

    #[test]
    fn publish_at_recordless_root_is_nacked_and_retried_not_lost() {
        // The re-home window in miniature: the publish lands (Closest) on a
        // node that does not hold the topic's subscriber-set record yet —
        // exactly what happens when a publish beats the record migration to
        // the new root after a crash. The bare root must nack, and the
        // publisher must re-route until the record is reachable again.
        let mut h = Harness::new(8);
        h.start_all();
        h.run(20);
        let topic = crate::pubsub::topic_key("rehome-nack");
        let root = h.owner_of(&topic);
        let subscribers: Vec<usize> = (0..h.nodes.len()).filter(|&i| i != root).collect();
        let now = h.now;
        for &i in &subscribers {
            h.nodes[i].pubsub_subscribe(now, topic, Duration::from_secs(600));
        }
        h.pump();
        // Publisher registers the publish, but the frame is steered to a
        // node that is NOT the topic owner (Exact to a wrong address while
        // the payload still names the topic) — the "new root without the
        // record" of the re-home window.
        let publisher = subscribers[0];
        let wrong = *subscribers
            .iter()
            .find(|&&i| i != publisher && !h.nodes[i].owns_key(&topic))
            .unwrap();
        let msg_id = 0xDEAD_BEEF;
        let payload = Bytes::from(b"risky".as_slice());
        h.nodes[publisher].pending_publishes.insert(
            msg_id,
            PendingPublish {
                topic,
                payload: payload.clone(),
                attempts: 0,
                retry_at: None,
            },
        );
        h.nodes[publisher].publish_order.push_back(msg_id);
        let now = h.now;
        let wrong_addr = h.nodes[wrong].address();
        let src = h.nodes[publisher].address();
        let pkt = RoutedPacket::new(
            src,
            wrong_addr,
            DeliveryMode::Exact,
            RoutedPayload::PubSubPublish {
                topic,
                msg_id,
                payload,
            },
        );
        h.nodes[publisher].route(now, pkt);
        h.pump(); // nack comes back
        assert_eq!(h.nodes[wrong].stats().pubsub_nacks_sent, 1);
        assert_eq!(h.nodes[publisher].stats().pubsub_nacks_received, 1);
        // The backoff elapses on the maintenance tick; the retry routes
        // Closest and reaches the real root, which fans out.
        h.run(4);
        let mut delivered_to = 0;
        for &i in &subscribers {
            let got = h.nodes[i].take_pubsub_delivered();
            if got.iter().any(|(t, m, _)| (*t, *m) == (topic, msg_id)) {
                delivered_to += 1;
            }
        }
        assert_eq!(
            delivered_to,
            subscribers.len(),
            "the nacked publish must still reach every subscriber"
        );
        assert!(h.nodes[publisher].stats().pubsub_publish_retries >= 1);
        assert_eq!(h.nodes[publisher].stats().pubsub_publish_failures, 0);
    }
}
