//! Connection-oriented virtual streams multiplexed over routed overlay frames.
//!
//! The paper's IPOP vision is arbitrary IP traffic between self-configured
//! endpoints; this module gives applications the piece the raw tunnel does
//! not — ordered, reliable byte streams between overlay *addresses* — without
//! each app hand-rolling reliability on top of `IpTunnel` frames. One engine
//! per node multiplexes any number of streams over the routed fabric:
//!
//! * **Frames** — `StreamSyn`/`StreamSynAck` open, `StreamData`/`StreamAck`
//!   carry, `StreamFin` closes (see [`crate::packets::RoutedPayload`]). DATA
//!   payloads ride the same zero-copy [`Bytes`] path as the IP tunnel: app
//!   chunks are sliced, never copied, and forwarders patch the cached wire
//!   image instead of re-encoding.
//! * **Reliability** — byte sequence numbers, cumulative ACKs, a bounded
//!   retransmit queue, and an RFC 6298-style RTO (the same estimator shape as
//!   the link monitor's probe deadline: `srtt + 4·rttvar`, doubled per
//!   consecutive miss, clamped). One timer per stream, restarted on progress;
//!   [`MAX_RETRIES`] consecutive timeouts fail the stream.
//! * **Flow control** — every DATA/ACK advertises the sender's receive
//!   window; a sender keeps at most that many unacknowledged bytes in
//!   flight. The advertised window shrinks by whatever sits in the reorder
//!   buffer, so a lossy path cannot balloon receiver memory.
//! * **Determinism** — no wall clock, no randomness: state lives in
//!   `BTreeMap`s, timers derive from [`SimTime`], and stream ids come from
//!   the embedding node's token counter. Identical inputs replay identical
//!   frame sequences, which is what lets the sharded simulator run thousands
//!   of streams bit-reproducibly.
//!
//! Teardown is whole-stream, not half-close: a FIN (sent after the local
//! send buffer drains) tears down both directions, and the receiving side
//! drops its own unsent data. Frames for unknown streams are counted and
//! dropped — the peer's retransmit budget bounds how long the other end
//! lingers.

use std::collections::{BTreeMap, VecDeque};

use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

use crate::address::Address;
use crate::packets::RoutedPayload;

/// Receive window advertised by a fresh stream, in bytes.
pub const DEFAULT_WINDOW: u32 = 64 * 1024;

/// Largest DATA payload carved from the send buffer — roughly tunnel-MTU
/// sized, so a stream segment and a tunnelled IP packet cost the fabric the
/// same.
pub const MAX_SEGMENT: usize = 1200;

/// Consecutive RTO expiries (on the same oldest outstanding frame) after
/// which the stream is declared failed and torn down.
pub const MAX_RETRIES: u32 = 8;

/// RTO clamp bounds and pre-sample default — the link monitor's probe
/// deadline constants, reused deliberately: both timers watch the same links.
const RTO_MIN: Duration = Duration::from_millis(250);
const RTO_MAX: Duration = Duration::from_secs(3);
const RTO_INITIAL: Duration = Duration::from_secs(1);

/// Lifecycle notifications surfaced to the embedding agent, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// The three-way exchange completed; [`VStreams::send`] will flow.
    Established { remote: Address, stream_id: u64 },
    /// The peer closed: all of its data has been delivered. The local state
    /// is already gone — no further send/close is needed (or possible).
    RemoteClosed { remote: Address, stream_id: u64 },
    /// The retransmit budget ran out (peer crashed, left, or unreachable).
    /// Undelivered data is dropped with the state.
    Failed { remote: Address, stream_id: u64 },
    /// Our FIN was acknowledged; the close completed cleanly.
    Closed { remote: Address, stream_id: u64 },
}

/// Engine-wide counters, merged into [`crate::node::OverlayStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Streams opened from this node (`connect`).
    pub opened: u64,
    /// Streams accepted from remote SYNs.
    pub accepted: u64,
    /// DATA segments sent (first transmissions).
    pub data_sent: u64,
    /// DATA segments received in order and delivered.
    pub data_received: u64,
    /// Frames re-sent on RTO expiry (SYN, DATA and FIN alike).
    pub retransmits: u64,
    /// DATA segments that were duplicates of already-delivered bytes.
    pub duplicates: u64,
    /// Streams that exhausted their retransmit budget.
    pub failed: u64,
    /// Streams closed cleanly (local FIN acknowledged or remote FIN drained).
    pub closed: u64,
    /// Frames for streams this node no longer (or never) tracked.
    pub orphan_frames: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// SYN sent, waiting for the SYN-ACK.
    SynSent,
    /// Open in both directions.
    Established,
    /// Local FIN sent, waiting for its cumulative ACK.
    FinSent,
}

/// One DATA segment awaiting its cumulative ACK.
struct InFlight {
    payload: Bytes,
    sent_at: SimTime,
    /// Karn's rule: a segment that was ever retransmitted contributes no RTT
    /// sample (the ACK cannot be attributed to one transmission).
    retransmitted: bool,
}

/// Per-stream state. Sequence numbers count bytes; the FIN consumes one
/// extra sequence slot so its ACK is unambiguous.
struct Stream {
    state: State,
    // ---- send side
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to send.
    snd_nxt: u64,
    /// Peer's most recently advertised receive window.
    peer_window: u32,
    /// Application bytes accepted but not yet carved into segments. Chunks
    /// are [`Bytes`] views — carving slices, never copies.
    send_buf: VecDeque<Bytes>,
    /// Sent-but-unacked segments, keyed by first sequence number.
    retx: BTreeMap<u64, InFlight>,
    /// `close` was requested; the FIN goes out once `send_buf` and `retx`
    /// drain.
    fin_queued: bool,
    /// Sequence number our FIN consumed, once sent.
    fin_seq: Option<u64>,
    // ---- receive side
    /// Next expected byte.
    rcv_nxt: u64,
    /// Out-of-order segments waiting for the gap to fill.
    reorder: BTreeMap<u64, Bytes>,
    reorder_bytes: usize,
    /// Sequence number of the peer's FIN, once seen.
    remote_fin: Option<u64>,
    // ---- timers (RFC 6298 estimator + one restart-on-progress timer)
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    /// Consecutive RTO expiries on the current oldest outstanding frame.
    retries: u32,
    /// When the oldest outstanding frame was last (re)sent — the RTO
    /// deadline base. Restarted when the ACK clock makes progress.
    timer_epoch: SimTime,
}

impl Stream {
    fn new(state: State, now: SimTime, peer_window: u32) -> Self {
        Stream {
            state,
            snd_una: 0,
            snd_nxt: 0,
            peer_window,
            send_buf: VecDeque::new(),
            retx: BTreeMap::new(),
            fin_queued: false,
            fin_seq: None,
            rcv_nxt: 0,
            reorder: BTreeMap::new(),
            reorder_bytes: 0,
            remote_fin: None,
            srtt_ns: None,
            rttvar_ns: 0,
            retries: 0,
            timer_epoch: now,
        }
    }

    /// Receive window to advertise: the default minus what the reorder
    /// buffer already holds (delivered bytes are the application's problem).
    fn recv_window(&self) -> u32 {
        DEFAULT_WINDOW.saturating_sub(self.reorder_bytes.min(u32::MAX as usize) as u32)
    }

    /// Unacknowledged bytes in flight.
    fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Record one RTT sample (RFC 6298 §2).
    fn sample_rtt(&mut self, sample: Duration) {
        let r = sample.as_nanos();
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2;
            }
            Some(srtt) => {
                let err = srtt.abs_diff(r);
                self.rttvar_ns = (3 * self.rttvar_ns + err) / 4;
                self.srtt_ns = Some((7 * srtt + r) / 8);
            }
        }
    }

    /// Current retransmission timeout: `srtt + 4·rttvar` clamped into
    /// `[RTO_MIN, RTO_MAX]`, doubled per consecutive expiry (capped so the
    /// backoff cannot overflow), then clamped again.
    fn rto(&self) -> Duration {
        let base = match self.srtt_ns {
            Some(srtt) => Duration::from_nanos(srtt + 4 * self.rttvar_ns),
            None => RTO_INITIAL,
        };
        let base = base.clamp(RTO_MIN, RTO_MAX);
        Duration::from_nanos(base.as_nanos() << self.retries.min(4)).min(RTO_MAX)
    }

    /// Does any frame await an ACK (SYN, DATA or FIN)?
    fn outstanding(&self) -> bool {
        self.state == State::SynSent || !self.retx.is_empty() || self.fin_unacked()
    }

    fn fin_unacked(&self) -> bool {
        self.fin_seq.is_some_and(|f| self.snd_una <= f)
    }
}

/// The per-node virtual-stream engine: a table of streams keyed by
/// `(remote address, stream id)`, inbound frame handlers, the send path and
/// the RTO sweep. The embedding [`crate::node::OverlayNode`] feeds it
/// delivered frames, routes what [`VStreams::take_outgoing`] drains, and
/// calls [`VStreams::tick`] from its maintenance alarm.
pub struct VStreams {
    streams: BTreeMap<(Address, u64), Stream>,
    /// Streams accepted from remote SYNs, for `take_accepted`.
    accepted: VecDeque<(Address, u64)>,
    /// In-order payload delivered to the application.
    recv: VecDeque<(Address, u64, Bytes)>,
    events: VecDeque<StreamEvent>,
    /// Frames awaiting routing: `(destination overlay address, payload)`.
    out: Vec<(Address, RoutedPayload)>,
    pub stats: StreamStats,
}

impl Default for VStreams {
    fn default() -> Self {
        Self::new()
    }
}

impl VStreams {
    pub fn new() -> Self {
        VStreams {
            streams: BTreeMap::new(),
            accepted: VecDeque::new(),
            recv: VecDeque::new(),
            events: VecDeque::new(),
            out: Vec::new(),
            stats: StreamStats::default(),
        }
    }

    /// Number of live streams (diagnostics).
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    // ------------------------------------------------------------------- API

    /// Open a stream to `remote` under the caller-supplied id (the node
    /// derives it from its token counter plus an address-order parity bit so
    /// simultaneous opens in both directions can never collide). Data may be
    /// queued immediately; it flows once the SYN-ACK arrives.
    pub fn connect(&mut self, now: SimTime, remote: Address, stream_id: u64) {
        let stream = Stream::new(State::SynSent, now, 0);
        self.streams.insert((remote, stream_id), stream);
        self.stats.opened += 1;
        self.out.push((
            remote,
            RoutedPayload::StreamSyn {
                stream_id,
                window: DEFAULT_WINDOW,
            },
        ));
    }

    /// Queue `data` for ordered delivery. Returns false when the stream is
    /// unknown or already closing.
    pub fn send(&mut self, now: SimTime, remote: Address, stream_id: u64, data: Bytes) -> bool {
        let key = (remote, stream_id);
        let Some(s) = self.streams.get_mut(&key) else {
            return false;
        };
        if s.fin_queued || data.is_empty() {
            return !data.is_empty();
        }
        s.send_buf.push_back(data);
        self.push_data(now, key);
        true
    }

    /// Close the stream: remaining buffered data is still delivered, then a
    /// FIN tears the stream down in both directions.
    pub fn close(&mut self, now: SimTime, remote: Address, stream_id: u64) {
        let key = (remote, stream_id);
        let Some(s) = self.streams.get_mut(&key) else {
            return;
        };
        if s.state == State::SynSent && s.send_buf.is_empty() {
            // Nothing committed yet: abort silently. The peer (if the SYN
            // arrived) fails its half through the retransmit budget.
            self.streams.remove(&key);
            return;
        }
        s.fin_queued = true;
        self.maybe_send_fin(now, key);
    }

    // ---------------------------------------------------------------- drains

    /// Frames to route, in emission order: `(remote address, payload)`.
    pub fn take_outgoing(&mut self) -> Vec<(Address, RoutedPayload)> {
        std::mem::take(&mut self.out)
    }

    /// Streams accepted from remote SYNs since the last call.
    pub fn take_accepted(&mut self) -> Vec<(Address, u64)> {
        self.accepted.drain(..).collect()
    }

    /// In-order stream data: `(remote, stream id, chunk)`. Chunks are views
    /// of the received wire payloads — no copy on the way up either.
    pub fn take_recv(&mut self) -> Vec<(Address, u64, Bytes)> {
        self.recv.drain(..).collect()
    }

    /// Lifecycle events since the last call.
    pub fn take_events(&mut self) -> Vec<StreamEvent> {
        self.events.drain(..).collect()
    }

    // ---------------------------------------------------------------- intake

    /// Handle one delivered stream frame from `src`. Non-stream payloads are
    /// ignored (the node's dispatch already matched the variant).
    pub fn on_payload(&mut self, now: SimTime, src: Address, payload: &RoutedPayload) {
        match payload {
            RoutedPayload::StreamSyn { stream_id, window } => {
                self.on_syn(now, src, *stream_id, *window);
            }
            RoutedPayload::StreamSynAck { stream_id, window } => {
                self.on_syn_ack(now, src, *stream_id, *window);
            }
            RoutedPayload::StreamData {
                stream_id,
                seq,
                window,
                payload,
            } => {
                self.on_data(now, src, *stream_id, *seq, *window, payload.clone());
            }
            RoutedPayload::StreamAck {
                stream_id,
                ack,
                window,
            } => {
                self.on_ack(now, src, *stream_id, *ack, *window);
            }
            RoutedPayload::StreamFin { stream_id, seq } => {
                self.on_fin(now, src, *stream_id, *seq);
            }
            _ => {}
        }
    }

    fn on_syn(&mut self, now: SimTime, src: Address, stream_id: u64, window: u32) {
        let key = (src, stream_id);
        match self.streams.get(&key) {
            Some(s) if s.state == State::SynSent => {
                // Id collision with our own outgoing stream — impossible by
                // construction (parity bit), dropped defensively.
                self.stats.orphan_frames += 1;
            }
            Some(_) => {
                // Duplicate SYN: the SYN-ACK was lost. Re-answer.
                self.out.push((
                    src,
                    RoutedPayload::StreamSynAck {
                        stream_id,
                        window: self.streams[&key].recv_window(),
                    },
                ));
            }
            None => {
                let stream = Stream::new(State::Established, now, window);
                self.streams.insert(key, stream);
                self.accepted.push_back(key);
                self.stats.accepted += 1;
                self.out.push((
                    src,
                    RoutedPayload::StreamSynAck {
                        stream_id,
                        window: DEFAULT_WINDOW,
                    },
                ));
            }
        }
    }

    fn on_syn_ack(&mut self, now: SimTime, src: Address, stream_id: u64, window: u32) {
        let key = (src, stream_id);
        let Some(s) = self.streams.get_mut(&key) else {
            self.stats.orphan_frames += 1;
            return;
        };
        if s.state != State::SynSent {
            return; // duplicate SYN-ACK
        }
        s.state = State::Established;
        s.peer_window = window;
        s.retries = 0;
        s.timer_epoch = now;
        self.events.push_back(StreamEvent::Established {
            remote: src,
            stream_id,
        });
        // Data queued while connecting flows now.
        self.push_data(now, key);
        self.maybe_send_fin(now, key);
    }

    fn on_data(
        &mut self,
        now: SimTime,
        src: Address,
        stream_id: u64,
        seq: u64,
        window: u32,
        payload: Bytes,
    ) {
        let key = (src, stream_id);
        let Some(s) = self.streams.get_mut(&key) else {
            self.stats.orphan_frames += 1;
            return;
        };
        s.peer_window = window;
        if s.state == State::SynSent {
            // Our SYN-ACK never existed — we are the connector and the peer's
            // SYN-ACK was lost yet it is already sending? Cannot happen (only
            // the acceptor sends before Established when its SYN-ACK is
            // lost), but promote defensively rather than wedge.
            s.state = State::Established;
            self.events.push_back(StreamEvent::Established {
                remote: src,
                stream_id,
            });
        }
        let len = payload.len() as u64;
        if seq + len <= s.rcv_nxt || s.reorder.contains_key(&seq) {
            // Entirely old (or already buffered): the ACK was lost. Re-ack.
            self.stats.duplicates += 1;
        } else {
            // Segments are never re-split, so a non-duplicate is entirely
            // new: buffer it and drain whatever became contiguous.
            s.reorder_bytes += payload.len();
            s.reorder.insert(seq, payload);
            while let Some(chunk) = s.reorder.remove(&s.rcv_nxt) {
                s.reorder_bytes -= chunk.len();
                s.rcv_nxt += chunk.len() as u64;
                self.stats.data_received += 1;
                self.recv.push_back((src, stream_id, chunk));
            }
        }
        self.ack_and_maybe_finish(now, key);
    }

    fn on_ack(&mut self, now: SimTime, src: Address, stream_id: u64, ack: u64, window: u32) {
        let key = (src, stream_id);
        let Some(s) = self.streams.get_mut(&key) else {
            self.stats.orphan_frames += 1;
            return;
        };
        s.peer_window = window;
        if ack <= s.snd_una {
            return; // stale or duplicate ACK
        }
        // Cumulative trim; the newest fully-acked untouched segment yields
        // the RTT sample (Karn's rule skips retransmitted ones).
        let mut sample: Option<Duration> = None;
        while let Some((&seq, seg)) = s.retx.iter().next() {
            if seq + seg.payload.len() as u64 > ack {
                break;
            }
            if !seg.retransmitted {
                sample = Some(now.saturating_since(seg.sent_at));
            }
            s.retx.remove(&seq);
        }
        if let Some(rtt) = sample {
            s.sample_rtt(rtt);
        }
        s.snd_una = ack;
        s.retries = 0;
        s.timer_epoch = now;
        if s.fin_seq.is_some_and(|f| ack > f) {
            // Our FIN is acknowledged: the stream is fully closed.
            self.streams.remove(&key);
            self.stats.closed += 1;
            self.events.push_back(StreamEvent::Closed {
                remote: src,
                stream_id,
            });
            return;
        }
        // The window opened (or moved): keep the pipe full.
        self.push_data(now, key);
        self.maybe_send_fin(now, key);
    }

    fn on_fin(&mut self, now: SimTime, src: Address, stream_id: u64, seq: u64) {
        let key = (src, stream_id);
        let Some(s) = self.streams.get_mut(&key) else {
            // Our side is already gone (our own teardown completed); ack the
            // retransmitted FIN statelessly so the peer can finish too.
            self.out.push((
                src,
                RoutedPayload::StreamAck {
                    stream_id,
                    ack: seq + 1,
                    window: 0,
                },
            ));
            return;
        };
        s.remote_fin = Some(seq);
        self.ack_and_maybe_finish(now, key);
    }

    // -------------------------------------------------------------- timers

    /// RTO sweep, run from the node's maintenance alarm: retransmit the
    /// oldest outstanding frame of every stream whose timer expired; fail
    /// streams that exhausted [`MAX_RETRIES`].
    pub fn tick(&mut self, now: SimTime) {
        let keys: Vec<(Address, u64)> = self
            .streams
            .iter()
            .filter(|(_, s)| s.outstanding())
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let Some(s) = self.streams.get_mut(&key) else {
                continue;
            };
            if now.saturating_since(s.timer_epoch) < s.rto() {
                continue;
            }
            if s.retries >= MAX_RETRIES {
                self.streams.remove(&key);
                self.stats.failed += 1;
                self.events.push_back(StreamEvent::Failed {
                    remote: key.0,
                    stream_id: key.1,
                });
                continue;
            }
            s.retries += 1;
            s.timer_epoch = now;
            self.stats.retransmits += 1;
            let (remote, stream_id) = key;
            let window = s.recv_window();
            let frame = match s.state {
                State::SynSent => RoutedPayload::StreamSyn {
                    stream_id,
                    window: DEFAULT_WINDOW,
                },
                _ => match s.retx.iter_mut().next() {
                    Some((&seq, seg)) => {
                        seg.retransmitted = true;
                        RoutedPayload::StreamData {
                            stream_id,
                            seq,
                            window,
                            payload: seg.payload.clone(),
                        }
                    }
                    // outstanding() without data in flight: the unacked FIN.
                    None => RoutedPayload::StreamFin {
                        stream_id,
                        seq: s.fin_seq.unwrap_or(s.snd_nxt),
                    },
                },
            };
            self.out.push((remote, frame));
        }
    }

    // ------------------------------------------------------------ send path

    /// Carve segments from the send buffer while the peer's window has room.
    fn push_data(&mut self, now: SimTime, key: (Address, u64)) {
        let Some(s) = self.streams.get_mut(&key) else {
            return;
        };
        if s.state == State::SynSent {
            return; // queued until the SYN-ACK brings the peer's window
        }
        while !s.send_buf.is_empty() && s.in_flight() < u64::from(s.peer_window) {
            let room = (u64::from(s.peer_window) - s.in_flight()) as usize;
            let chunk = s.send_buf.front().cloned().unwrap_or_default();
            let take = chunk.len().min(MAX_SEGMENT).min(room);
            let payload = chunk.slice(..take);
            if take == chunk.len() {
                s.send_buf.pop_front();
            } else if let Some(front) = s.send_buf.front_mut() {
                *front = chunk.slice(take..);
            }
            let seq = s.snd_nxt;
            let had_outstanding = s.outstanding();
            s.snd_nxt += take as u64;
            s.retx.insert(
                seq,
                InFlight {
                    payload: payload.clone(),
                    sent_at: now,
                    retransmitted: false,
                },
            );
            if !had_outstanding {
                s.timer_epoch = now;
            }
            self.stats.data_sent += 1;
            self.out.push((
                key.0,
                RoutedPayload::StreamData {
                    stream_id: key.1,
                    seq,
                    window: s.recv_window(),
                    payload,
                },
            ));
        }
    }

    /// Send the FIN once a requested close has drained the send side.
    fn maybe_send_fin(&mut self, now: SimTime, key: (Address, u64)) {
        let Some(s) = self.streams.get_mut(&key) else {
            return;
        };
        if !s.fin_queued
            || s.fin_seq.is_some()
            || s.state == State::SynSent
            || !s.send_buf.is_empty()
            || !s.retx.is_empty()
        {
            return;
        }
        let seq = s.snd_nxt;
        s.fin_seq = Some(seq);
        s.snd_nxt = seq + 1;
        s.state = State::FinSent;
        s.timer_epoch = now;
        s.retries = 0;
        self.out.push((
            key.0,
            RoutedPayload::StreamFin {
                stream_id: key.1,
                seq,
            },
        ));
    }

    /// Acknowledge the receive side's current edge; when the peer's FIN is
    /// reached, complete the remote close and drop the stream.
    fn ack_and_maybe_finish(&mut self, _now: SimTime, key: (Address, u64)) {
        let Some(s) = self.streams.get_mut(&key) else {
            return;
        };
        let (remote, stream_id) = key;
        if let Some(fin) = s.remote_fin {
            if s.rcv_nxt >= fin {
                // Every byte before the FIN has been delivered. Ack past the
                // FIN and tear down — whole-stream close, both directions.
                self.out.push((
                    remote,
                    RoutedPayload::StreamAck {
                        stream_id,
                        ack: fin + 1,
                        window: 0,
                    },
                ));
                self.streams.remove(&key);
                self.stats.closed += 1;
                self.events
                    .push_back(StreamEvent::RemoteClosed { remote, stream_id });
                return;
            }
        }
        let (ack, window) = (s.rcv_nxt, s.recv_window());
        self.out.push((
            remote,
            RoutedPayload::StreamAck {
                stream_id,
                ack,
                window,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key(&[n])
    }

    /// Deliver every queued frame from `from` into `to`, returning how many
    /// frames moved. Loss is simulated by dropping from the returned list
    /// before calling this.
    fn relay(now: SimTime, from: &mut VStreams, from_addr: Address, to: &mut VStreams) -> usize {
        let frames = from.take_outgoing();
        let n = frames.len();
        for (_, payload) in frames {
            to.on_payload(now, from_addr, &payload);
        }
        n
    }

    /// Pump frames both ways until quiescent.
    fn settle(now: SimTime, a: &mut VStreams, aa: Address, b: &mut VStreams, ba: Address) {
        for _ in 0..64 {
            let moved = relay(now, a, aa, b) + relay(now, b, ba, a);
            if moved == 0 {
                return;
            }
        }
        panic!("frame exchange did not quiesce");
    }

    #[test]
    fn handshake_transfer_and_close() {
        let (aa, ba) = (addr(1), addr(2));
        let mut a = VStreams::new();
        let mut b = VStreams::new();
        let t = SimTime::ZERO;
        a.connect(t, ba, 4);
        assert!(a.send(t, ba, 4, Bytes::from(vec![7u8; 5000])));
        settle(t, &mut a, aa, &mut b, ba);

        assert_eq!(b.take_accepted(), vec![(aa, 4)]);
        let chunks = b.take_recv();
        let total: usize = chunks.iter().map(|(_, _, c)| c.len()).sum();
        assert_eq!(total, 5000);
        assert!(chunks.iter().all(|(r, id, _)| (*r, *id) == (aa, 4)));
        // Chunks arrive in order and are views, segment-sized.
        assert!(chunks.iter().all(|(_, _, c)| c.len() <= MAX_SEGMENT));
        assert!(a.take_events().contains(&StreamEvent::Established {
            remote: ba,
            stream_id: 4
        }));

        a.close(t, ba, 4);
        settle(t, &mut a, aa, &mut b, ba);
        assert!(b.take_events().contains(&StreamEvent::RemoteClosed {
            remote: aa,
            stream_id: 4
        }));
        assert!(a.take_events().contains(&StreamEvent::Closed {
            remote: ba,
            stream_id: 4
        }));
        assert!(a.is_empty() && b.is_empty(), "state fully torn down");
        assert_eq!(a.stats.data_sent, b.stats.data_received);
        assert_eq!(a.stats.retransmits, 0);
    }

    #[test]
    fn window_bounds_inflight_bytes() {
        let (_aa, ba) = (addr(1), addr(2));
        let mut a = VStreams::new();
        let mut b = VStreams::new();
        let t = SimTime::ZERO;
        a.connect(t, ba, 2);
        // Complete the handshake but swallow everything afterwards.
        relay(t, &mut a, addr(1), &mut b);
        relay(t, &mut b, ba, &mut a);
        let big = (DEFAULT_WINDOW as usize) * 3;
        assert!(a.send(t, ba, 2, Bytes::from(vec![1u8; big])));
        let frames = a.take_outgoing();
        let sent: usize = frames
            .iter()
            .map(|(_, p)| match p {
                RoutedPayload::StreamData { payload, .. } => payload.len(),
                _ => 0,
            })
            .sum();
        assert!(
            sent <= DEFAULT_WINDOW as usize,
            "sender must respect the peer window: {sent} in flight"
        );
        assert!(sent >= DEFAULT_WINDOW as usize - MAX_SEGMENT);
    }

    #[test]
    fn lost_data_is_retransmitted_and_reordered_delivery_stays_ordered() {
        let (aa, ba) = (addr(1), addr(2));
        let mut a = VStreams::new();
        let mut b = VStreams::new();
        let mut t = SimTime::ZERO;
        a.connect(t, ba, 2);
        settle(t, &mut a, aa, &mut b, ba);
        let body: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        assert!(a.send(t, ba, 2, Bytes::from(body.clone())));

        // Drop the first DATA frame; deliver the rest out of order.
        let mut frames = a.take_outgoing();
        frames.remove(0);
        frames.reverse();
        for (_, p) in frames {
            b.on_payload(t, aa, &p);
        }
        relay(t, &mut b, ba, &mut a); // acks (all for the gap)
        assert!(b.take_recv().is_empty(), "gapped data must not deliver");

        // The RTO expires; the sweep re-sends the lost head segment.
        t += Duration::from_secs(2);
        a.tick(t);
        assert!(a.stats.retransmits >= 1);
        settle(t, &mut a, aa, &mut b, ba);
        let got: Vec<u8> = b
            .take_recv()
            .into_iter()
            .flat_map(|(_, _, c)| c.to_vec())
            .collect();
        assert_eq!(got, body, "bytes deliver in order despite loss");
        assert!(b.stats.duplicates <= 4, "only the re-sent head may repeat");
    }

    #[test]
    fn retransmit_budget_fails_an_unreachable_stream() {
        let ba = addr(2);
        let mut a = VStreams::new();
        let mut t = SimTime::ZERO;
        a.connect(t, ba, 8);
        for _ in 0..=MAX_RETRIES {
            t = t + RTO_MAX + Duration::from_millis(1);
            a.tick(t);
            a.take_outgoing();
        }
        t = t + RTO_MAX + Duration::from_millis(1);
        a.tick(t);
        assert_eq!(
            a.take_events(),
            vec![StreamEvent::Failed {
                remote: ba,
                stream_id: 8
            }]
        );
        assert!(a.is_empty());
        assert_eq!(a.stats.failed, 1);
    }

    #[test]
    fn rto_follows_the_rtt_estimate() {
        let mut s = Stream::new(State::Established, SimTime::ZERO, DEFAULT_WINDOW);
        assert_eq!(s.rto(), RTO_INITIAL);
        s.sample_rtt(Duration::from_millis(100));
        // First sample: srtt = 100ms, rttvar = 50ms → 300ms.
        assert_eq!(s.rto(), Duration::from_millis(300));
        for _ in 0..20 {
            s.sample_rtt(Duration::from_millis(100));
        }
        // Variance decays towards zero; the clamp floor takes over.
        assert_eq!(s.rto(), RTO_MIN);
        s.retries = 2;
        assert_eq!(s.rto(), Duration::from_millis(1000));
        s.retries = 30;
        assert_eq!(s.rto(), RTO_MAX, "backoff stays clamped");
    }

    #[test]
    fn duplicate_syn_and_stateless_fin_ack_are_idempotent() {
        let (aa, ba) = (addr(1), addr(2));
        let mut b = VStreams::new();
        let t = SimTime::ZERO;
        let syn = RoutedPayload::StreamSyn {
            stream_id: 3,
            window: 1024,
        };
        b.on_payload(t, aa, &syn);
        b.on_payload(t, aa, &syn);
        assert_eq!(b.stats.accepted, 1, "duplicate SYN accepts once");
        assert_eq!(b.take_accepted().len(), 1);
        let synacks = b
            .take_outgoing()
            .iter()
            .filter(|(_, p)| matches!(p, RoutedPayload::StreamSynAck { .. }))
            .count();
        assert_eq!(synacks, 2, "each SYN is answered");

        // A FIN for a stream we no longer hold is acked statelessly.
        b.on_payload(
            t,
            ba,
            &RoutedPayload::StreamFin {
                stream_id: 99,
                seq: 41,
            },
        );
        let out = b.take_outgoing();
        assert!(matches!(
            out.as_slice(),
            [(
                _,
                RoutedPayload::StreamAck {
                    stream_id: 99,
                    ack: 42,
                    ..
                }
            )]
        ));
    }

    #[test]
    fn data_payloads_are_views_not_copies() {
        let ba = addr(2);
        let mut a = VStreams::new();
        let t = SimTime::ZERO;
        a.connect(t, ba, 2);
        a.take_outgoing();
        a.on_payload(
            t,
            ba,
            &RoutedPayload::StreamSynAck {
                stream_id: 2,
                window: DEFAULT_WINDOW,
            },
        );
        let body = Bytes::from(vec![9u8; MAX_SEGMENT * 2]);
        assert!(a.send(t, ba, 2, body.clone()));
        let frames = a.take_outgoing();
        let payloads: Vec<&Bytes> = frames
            .iter()
            .filter_map(|(_, p)| match p {
                RoutedPayload::StreamData { payload, .. } => Some(payload),
                _ => None,
            })
            .collect();
        assert_eq!(payloads.len(), 2);
        assert!(payloads[0].same_region(&body.slice(..MAX_SEGMENT)));
        assert!(payloads[1].same_region(&body.slice(MAX_SEGMENT..)));
    }
}
