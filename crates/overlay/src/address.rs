//! 160-bit overlay addresses and ring arithmetic.
//!
//! Brunet organises nodes on a ring of 2^160 addresses. IPOP assigns each node the
//! SHA-1 hash of its virtual IP address (paper Section III-B), so any node can
//! compute the overlay destination of an IP packet locally. Greedy routing needs
//! ring distances, which we compute with full 160-bit modular arithmetic.

use std::fmt;
use std::net::Ipv4Addr;

use ipop_packet::sha1::Sha1;
use ipop_simcore::StreamRng;

/// A 160-bit address on the Brunet ring.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(pub [u8; 20]);

/// An unsigned 160-bit distance between two addresses.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Distance(pub [u8; 20]);

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance([0u8; 20]);
    /// The maximum representable distance.
    pub const MAX: Distance = Distance([0xFF; 20]);

    /// Approximate the distance as an `f64` (used for Kleinberg shortcut sampling
    /// and diagnostics; precision loss is irrelevant there).
    pub fn as_f64(&self) -> f64 {
        self.0.iter().fold(0.0, |acc, &b| acc * 256.0 + b as f64)
    }

    /// Number of leading zero bits — a cheap logarithmic "closeness" measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0;
        for &b in &self.0 {
            if b == 0 {
                bits += 8;
            } else {
                bits += b.leading_zeros();
                break;
            }
        }
        bits
    }
}

impl Address {
    /// The zero address.
    pub const ZERO: Address = Address([0u8; 20]);

    /// The overlay address of a virtual IP: SHA-1 of its four octets, exactly as
    /// the IPOP prototype maps tap addresses onto Brunet addresses.
    pub fn from_ip(ip: Ipv4Addr) -> Address {
        Address(Sha1::digest(&ip.octets()))
    }

    /// The overlay address derived from an arbitrary name (used for DHT keys).
    pub fn from_key(key: &[u8]) -> Address {
        Address(Sha1::digest(key))
    }

    /// A uniformly random address.
    pub fn random(rng: &mut StreamRng) -> Address {
        let mut bytes = [0u8; 20];
        rng.fill_bytes(&mut bytes);
        Address(bytes)
    }

    /// Clockwise (additive) distance from `self` to `other`: `other - self mod 2^160`.
    pub fn clockwise_distance(&self, other: &Address) -> Distance {
        let mut out = [0u8; 20];
        let mut borrow = 0i16;
        for i in (0..20).rev() {
            let diff = other.0[i] as i16 - self.0[i] as i16 - borrow;
            if diff < 0 {
                out[i] = (diff + 256) as u8;
                borrow = 1;
            } else {
                out[i] = diff as u8;
                borrow = 0;
            }
        }
        Distance(out)
    }

    /// Ring distance: the smaller of the clockwise and counter-clockwise distances.
    pub fn ring_distance(&self, other: &Address) -> Distance {
        let cw = self.clockwise_distance(other);
        let ccw = other.clockwise_distance(self);
        if cw <= ccw {
            cw
        } else {
            ccw
        }
    }

    /// The address at clockwise offset `dist` from `self` (mod 2^160).
    pub fn add_distance(&self, dist: &Distance) -> Address {
        let mut out = [0u8; 20];
        let mut carry = 0u16;
        for i in (0..20).rev() {
            let sum = self.0[i] as u16 + dist.0[i] as u16 + carry;
            out[i] = (sum & 0xFF) as u8;
            carry = sum >> 8;
        }
        Address(out)
    }

    /// Is `self` within the clockwise arc from `from` (exclusive) to `to`
    /// (inclusive)? Used to decide ring ownership for DHT keys and ring repair.
    pub fn in_arc(&self, from: &Address, to: &Address) -> bool {
        if from == to {
            // Degenerate arc covering the whole ring.
            return true;
        }
        let arc = from.clockwise_distance(to);
        let offset = from.clockwise_distance(self);
        offset > Distance::ZERO && offset <= arc
    }

    /// Short hexadecimal prefix for logs and debugging.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({}…)", self.short())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(msb: u8) -> Address {
        let mut a = [0u8; 20];
        a[0] = msb;
        Address(a)
    }

    #[test]
    fn ip_mapping_is_deterministic_and_spread() {
        let a = Address::from_ip(Ipv4Addr::new(172, 16, 0, 2));
        let b = Address::from_ip(Ipv4Addr::new(172, 16, 0, 2));
        let c = Address::from_ip(Ipv4Addr::new(172, 16, 0, 3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Adjacent IPs land far apart on the ring (hashing spreads them).
        assert!(a.ring_distance(&c) > Distance::ZERO);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let near_top = addr(0xFF);
        let near_bottom = addr(0x01);
        let cw = near_top.clockwise_distance(&near_bottom);
        // 0x01... - 0xFF... mod 2^160 = 0x02 << 152
        assert_eq!(cw.0[0], 0x02);
        let ccw = near_bottom.clockwise_distance(&near_top);
        assert_eq!(ccw.0[0], 0xFE);
        assert!(near_top.ring_distance(&near_bottom) == cw);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Address::from_ip(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(a.clockwise_distance(&a), Distance::ZERO);
        assert_eq!(a.ring_distance(&a), Distance::ZERO);
    }

    #[test]
    fn add_distance_round_trips() {
        let a = Address::from_ip(Ipv4Addr::new(10, 0, 0, 1));
        let b = Address::from_ip(Ipv4Addr::new(10, 0, 0, 2));
        let d = a.clockwise_distance(&b);
        assert_eq!(a.add_distance(&d), b);
    }

    #[test]
    fn arc_membership() {
        let a = addr(0x10);
        let b = addr(0x80);
        let c = addr(0x40);
        let d = addr(0x90);
        assert!(c.in_arc(&a, &b));
        assert!(!d.in_arc(&a, &b));
        assert!(b.in_arc(&a, &b), "arc end is inclusive");
        assert!(!a.in_arc(&a, &b), "arc start is exclusive");
        // Wrapping arc.
        let hi = addr(0xF0);
        let lo = addr(0x08);
        assert!(addr(0xFF).in_arc(&hi, &lo));
        assert!(addr(0x01).in_arc(&hi, &lo));
        assert!(!addr(0x80).in_arc(&hi, &lo));
    }

    #[test]
    fn distance_helpers() {
        assert_eq!(Distance::ZERO.as_f64(), 0.0);
        assert!(Distance::MAX.as_f64() > 1e48);
        assert_eq!(Distance::ZERO.leading_zero_bits(), 160);
        let d = addr(0x01).clockwise_distance(&addr(0x02));
        assert_eq!(d.leading_zero_bits(), 7);
    }

    #[test]
    fn random_addresses_differ() {
        let mut rng = StreamRng::new(1, "addr");
        let a = Address::random(&mut rng);
        let b = Address::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn display_formats() {
        let a = Address::from_ip(Ipv4Addr::new(172, 16, 0, 2));
        assert_eq!(format!("{a}").len(), 40);
        assert_eq!(a.short().len(), 8);
    }
}
