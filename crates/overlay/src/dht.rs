//! Replicated soft-state DHT storage.
//!
//! The paper's self-configuration services (Brunet-ARP, and the address
//! allocation / name services built on top of it) assume a DHT that survives
//! churn. This module provides the storage half of that DHT; the protocol half
//! (routing `DhtPut`/`DhtGet`/`DhtCreate` operations, replicating records to
//! ring neighbours, handing records off on graceful leave) lives in
//! [`crate::node::OverlayNode`].
//!
//! Records are *soft state*: every record carries an absolute expiry instant
//! and is dropped when it passes, so stale data ages out without any explicit
//! invalidation protocol. Publishers keep their records alive by re-putting
//! them at half the TTL (DHCP-style lease renewal); a record whose publisher
//! crashed simply disappears one TTL later.
//!
//! The store sits behind the narrow [`DhtStore`] trait so the node never
//! depends on a concrete container. Implementations must iterate keys in a
//! deterministic order — key scans feed directly into replication-message
//! emission order, and the simulator's byte-identical-replay contract extends
//! to DHT maintenance traffic.

use std::collections::BTreeMap;

use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

use crate::address::Address;

/// Configuration of the DHT subsystem of one overlay node.
#[derive(Clone, Debug)]
pub struct DhtConfig {
    /// Total number of copies of each record (owner plus `replication - 1`
    /// ring neighbours). `1` disables replication.
    pub replication: usize,
    /// TTL applied to records stored without an explicit TTL.
    pub default_ttl: Duration,
    /// Quorum operation: when true, a `DhtCreate` is acknowledged only after a
    /// majority of the key's copy set stored the record, and a `DhtGet` polls
    /// the replica set, answers with the freshest copy by `(version, expiry)`
    /// and repairs stale or missing replicas. When false the key's owner
    /// answers alone from its local store (the pre-quorum behaviour).
    pub quorum: bool,
    /// How long a quorum coordinator waits for replica acks/answers before
    /// concluding: an unacked create fails (the claimant retries elsewhere),
    /// an unanswered read is served from whatever copies did answer.
    pub quorum_timeout: Duration,
    /// How long an unanswered lease-renewal `DhtCreate` stays outstanding
    /// before it is re-issued (and counted as a renewal timeout alarm).
    pub renewal_timeout: Duration,
    /// Anti-entropy: when true, every [`DhtConfig::sweep_interval`] each node
    /// exchanges compact record digests with the replica set of every key it
    /// owns (and with the owner of every key it publishes), pulling/pushing
    /// only the differing records — so replica sets converge even when no
    /// read ever touches a key, and a put lost in a crashed hop is recovered
    /// within one sweep instead of waiting out the publisher's TTL/2 refresh.
    pub sweep: bool,
    /// Interval between anti-entropy sweeps. Each node offsets its first
    /// sweep by a random fraction of this so the fleet does not synchronize.
    pub sweep_interval: Duration,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            replication: 3,
            default_ttl: Duration::from_secs(120),
            quorum: true,
            quorum_timeout: Duration::from_secs(4),
            renewal_timeout: Duration::from_secs(10),
            sweep: true,
            sweep_interval: Duration::from_secs(10),
        }
    }
}

/// One stored record.
#[derive(Clone, Debug)]
pub struct DhtRecord {
    /// The stored value (shared buffer; cloning a record does not copy it).
    pub value: Bytes,
    /// Instant at which the record silently expires.
    pub expires_at: SimTime,
    /// Version counter ordering writes under one key: the owner bumps it above
    /// any conflicting record it overwrites, replicas refuse to let a
    /// lower-versioned copy clobber a higher one, and quorum reads pick the
    /// copy with the highest `(version, expiry)`.
    pub version: u64,
    /// True while this node holds the record on behalf of the ring owner
    /// (it arrived via replication, not via the put/create delivery path).
    pub replica: bool,
    /// Peers the local node has pushed replicas to (maintained by the owner;
    /// empty on replicas).
    pub replicated_to: Vec<Address>,
}

impl DhtRecord {
    /// The TTL remaining at `now` (zero if expired — a record whose
    /// `expires_at` equals `now` is already expired, matching
    /// [`DhtRecord::expired`]).
    pub fn remaining_ttl(&self, now: SimTime) -> Duration {
        self.expires_at.saturating_since(now)
    }

    /// The remaining TTL in whole milliseconds, rounded *up*: a still-live
    /// record handed off or replicated with a truncated-to-zero TTL would
    /// arrive already expired at the receiver, silently losing the copy at
    /// the expiry boundary.
    pub fn remaining_ttl_ms(&self, now: SimTime) -> u64 {
        self.remaining_ttl(now).as_nanos().div_ceil(1_000_000)
    }

    /// Has the record expired at `now`? `expires_at == now` counts as expired
    /// — exactly when [`DhtRecord::remaining_ttl`] reaches zero — so a record
    /// at the boundary is dropped, never served.
    pub fn expired(&self, now: SimTime) -> bool {
        self.expires_at <= now
    }

    /// Freshness rank for quorum reads and replica conflict resolution:
    /// versions order writes, expiry (the most recent renewal) breaks ties,
    /// and the value bytes break exact ties deterministically.
    pub fn freshness(&self) -> (u64, SimTime, &[u8]) {
        (self.version, self.expires_at, &self.value)
    }
}

// ------------------------------------------------------------- anti-entropy

/// Width of the remaining-TTL buckets in sync digests. A digest entry's TTL
/// is built at the sender and compared at the receiver one transit later, so
/// raw remaining-TTL comparison would flag every record as diverged; bucketing
/// (plus the two-bucket threshold in [`sync_compare`]) tolerates that skew
/// while still detecting genuine renewals, which extend expiry by TTL/2.
pub const SYNC_TTL_BUCKET_MS: u64 = 4_000;

/// Buckets two same-version, same-value copies may differ by before the
/// older one counts as having missed a renewal.
const SYNC_TTL_SLACK_BUCKETS: u64 = 2;

/// One record's line in an anti-entropy digest: enough to detect a missing,
/// stale, or conflicting copy without shipping the value bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncDigestEntry {
    /// The record's DHT key.
    pub key: Address,
    /// The record's version at the sender.
    pub version: u64,
    /// Hash of the value bytes (see [`sync_value_hash`]): catches conflicting
    /// values hiding behind an equal version.
    pub value_hash: u64,
    /// Remaining TTL quantized to [`SYNC_TTL_BUCKET_MS`] buckets.
    pub ttl_bucket: u64,
}

/// Digest hash of a record value (FNV-1a 64): deterministic, cheap, and only
/// used to *detect* divergence — the records themselves are exchanged and
/// resolved under the byte-level freshness rules.
pub fn sync_value_hash(value: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in value {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build the digest entry for a live record at `now`.
pub fn sync_digest_entry(key: Address, rec: &DhtRecord, now: SimTime) -> SyncDigestEntry {
    SyncDigestEntry {
        key,
        version: rec.version,
        value_hash: sync_value_hash(&rec.value),
        ttl_bucket: rec.remaining_ttl_ms(now) / SYNC_TTL_BUCKET_MS,
    }
}

/// What a digest receiver should do about one entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncAction {
    /// The copies agree (within TTL-bucket slack): nothing to do.
    InSync,
    /// The sender's copy is fresher (or ours is missing): pull it.
    Pull,
    /// Our copy is fresher: push it back to the sender.
    Push,
    /// Equal versions but different values: pull *and* push, and let the
    /// store-level freshness rule (which sees the value bytes the digest
    /// hash abbreviates) pick the same winner on both sides.
    Exchange,
}

/// Compare a digest entry against the local copy (if any, expired treated as
/// absent) and decide the repair direction. Skew-tolerant: same-version,
/// same-value copies only diverge when their TTL buckets differ by at least
/// [`SYNC_TTL_SLACK_BUCKETS`].
pub fn sync_compare(
    entry: &SyncDigestEntry,
    local: Option<&DhtRecord>,
    now: SimTime,
) -> SyncAction {
    let Some(local) = local.filter(|rec| !rec.expired(now)) else {
        return SyncAction::Pull;
    };
    if entry.version > local.version {
        return SyncAction::Pull;
    }
    if local.version > entry.version {
        return SyncAction::Push;
    }
    let local_hash = sync_value_hash(&local.value);
    if local_hash != entry.value_hash {
        return SyncAction::Exchange;
    }
    let local_bucket = local.remaining_ttl_ms(now) / SYNC_TTL_BUCKET_MS;
    if entry.ttl_bucket >= local_bucket + SYNC_TTL_SLACK_BUCKETS {
        SyncAction::Pull
    } else if local_bucket >= entry.ttl_bucket + SYNC_TTL_SLACK_BUCKETS {
        SyncAction::Push
    } else {
        SyncAction::InSync
    }
}

/// Apply an incoming record copy (a replicate, repair, or anti-entropy push)
/// to `store` under the replica conflict rule: the existing record survives
/// when it outranks the incoming copy by `(version, expiry, value)`
/// freshness. Returns true when the incoming copy was stored.
pub fn apply_record_copy(
    store: &mut dyn DhtStore,
    key: Address,
    value: &Bytes,
    ttl_ms: u64,
    version: u64,
    replica: bool,
    now: SimTime,
) -> bool {
    let expires_at = now + Duration::from_millis(ttl_ms);
    let keep_existing = store
        .get(&key)
        .filter(|rec| !rec.expired(now))
        .is_some_and(|rec| rec.freshness() > (version, expires_at, value.as_ref()));
    if keep_existing {
        return false;
    }
    store.insert(
        key,
        DhtRecord {
            value: value.clone(),
            expires_at,
            version,
            replica,
            replicated_to: Vec::new(),
        },
    );
    true
}

/// The narrow storage interface the overlay node drives.
///
/// `keys()` must return keys in a deterministic (implementation-stable) order:
/// replication traffic is emitted while scanning it.
pub trait DhtStore {
    /// Insert or overwrite the record under `key`.
    fn insert(&mut self, key: Address, record: DhtRecord);
    /// Borrow the record under `key`, if present (expired records may still be
    /// returned until the next [`DhtStore::expire`] sweep — callers that care
    /// check [`DhtRecord::expired`]).
    fn get(&self, key: &Address) -> Option<&DhtRecord>;
    /// Mutably borrow the record under `key`.
    fn get_mut(&mut self, key: &Address) -> Option<&mut DhtRecord>;
    /// Remove and return the record under `key`.
    fn remove(&mut self, key: &Address) -> Option<DhtRecord>;
    /// Drop every expired record; returns how many were dropped.
    fn expire(&mut self, now: SimTime) -> usize;
    /// All stored keys, in deterministic order.
    fn keys(&self) -> Vec<Address>;
    /// Number of stored records.
    fn len(&self) -> usize;
    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total stored value bytes.
    fn stored_bytes(&self) -> usize;
    /// Number of records held as replicas (not owned).
    fn replicas_held(&self) -> usize;
}

/// The default in-memory soft-state store: a `BTreeMap`, so key iteration is
/// address-ordered and byte-identical across same-seed runs.
#[derive(Debug, Default)]
pub struct SoftStateStore {
    records: BTreeMap<Address, DhtRecord>,
    bytes: usize,
}

impl SoftStateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DhtStore for SoftStateStore {
    fn insert(&mut self, key: Address, record: DhtRecord) {
        self.bytes += record.value.len();
        if let Some(old) = self.records.insert(key, record) {
            self.bytes -= old.value.len();
        }
    }

    fn get(&self, key: &Address) -> Option<&DhtRecord> {
        self.records.get(key)
    }

    fn get_mut(&mut self, key: &Address) -> Option<&mut DhtRecord> {
        self.records.get_mut(key)
    }

    fn remove(&mut self, key: &Address) -> Option<DhtRecord> {
        let removed = self.records.remove(key);
        if let Some(rec) = &removed {
            self.bytes -= rec.value.len();
        }
        removed
    }

    fn expire(&mut self, now: SimTime) -> usize {
        let before = self.records.len();
        let bytes = &mut self.bytes;
        self.records.retain(|_, rec| {
            if rec.expired(now) {
                *bytes -= rec.value.len();
                false
            } else {
                true
            }
        });
        before - self.records.len()
    }

    fn keys(&self) -> Vec<Address> {
        self.records.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn stored_bytes(&self) -> usize {
        self.bytes
    }

    fn replicas_held(&self) -> usize {
        self.records.values().filter(|r| r.replica).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> Address {
        let mut b = [0u8; 20];
        b[0] = n;
        Address(b)
    }

    fn rec(len: usize, expires_at: SimTime, replica: bool) -> DhtRecord {
        DhtRecord {
            value: vec![7u8; len].into(),
            expires_at,
            version: 1,
            replica,
            replicated_to: Vec::new(),
        }
    }

    #[test]
    fn insert_tracks_bytes_and_overwrite() {
        let mut s = SoftStateStore::new();
        let t = SimTime::ZERO + Duration::from_secs(10);
        s.insert(key(1), rec(10, t, false));
        s.insert(key(2), rec(5, t, true));
        assert_eq!(s.len(), 2);
        assert_eq!(s.stored_bytes(), 15);
        assert_eq!(s.replicas_held(), 1);
        // Overwrite shrinks the byte count to the new value's size.
        s.insert(key(1), rec(3, t, false));
        assert_eq!(s.stored_bytes(), 8);
        s.remove(&key(2));
        assert_eq!(s.stored_bytes(), 3);
        assert_eq!(s.replicas_held(), 0);
    }

    #[test]
    fn expire_drops_only_stale_records() {
        let mut s = SoftStateStore::new();
        s.insert(
            key(1),
            rec(4, SimTime::ZERO + Duration::from_secs(5), false),
        );
        s.insert(
            key(2),
            rec(4, SimTime::ZERO + Duration::from_secs(50), false),
        );
        assert_eq!(s.expire(SimTime::ZERO + Duration::from_secs(10)), 1);
        assert_eq!(s.len(), 1);
        assert!(s.get(&key(2)).is_some());
        assert_eq!(s.stored_bytes(), 4);
    }

    #[test]
    fn keys_are_ordered() {
        let mut s = SoftStateStore::new();
        let t = SimTime::ZERO + Duration::from_secs(1);
        for n in [9u8, 3, 7, 1] {
            s.insert(key(n), rec(1, t, false));
        }
        assert_eq!(s.keys(), vec![key(1), key(3), key(7), key(9)]);
    }

    #[test]
    fn remaining_ttl_saturates() {
        let r = rec(1, SimTime::ZERO + Duration::from_secs(5), false);
        assert_eq!(r.remaining_ttl(SimTime::ZERO), Duration::from_secs(5));
        assert_eq!(
            r.remaining_ttl(SimTime::ZERO + Duration::from_secs(9)),
            Duration::ZERO
        );
        assert!(r.expired(SimTime::ZERO + Duration::from_secs(5)));
        assert!(!r.expired(SimTime::ZERO + Duration::from_secs(4)));
    }

    #[test]
    fn expiry_boundary_is_expired_and_swept() {
        // expires_at == now: expired, zero remaining TTL, and the sweep drops
        // it — the three views of the boundary must agree so a record at its
        // expiry instant is never served.
        let at = SimTime::ZERO + Duration::from_secs(5);
        let r = rec(1, at, false);
        assert!(r.expired(at));
        assert_eq!(r.remaining_ttl(at), Duration::ZERO);
        assert_eq!(r.remaining_ttl_ms(at), 0);
        let mut s = SoftStateStore::new();
        s.insert(key(1), rec(4, at, false));
        assert_eq!(s.expire(at), 1, "boundary record swept, not kept");
        assert!(s.is_empty());
    }

    #[test]
    fn remaining_ttl_ms_rounds_up_for_live_records() {
        // A record with less than a millisecond left is still live; handing
        // it off with a truncated TTL of 0 ms would kill it at the receiver.
        let r = rec(1, SimTime::ZERO + Duration::from_nanos(400_000), false);
        assert!(!r.expired(SimTime::ZERO));
        assert_eq!(r.remaining_ttl_ms(SimTime::ZERO), 1);
        let r2 = rec(1, SimTime::ZERO + Duration::from_millis(7), false);
        assert_eq!(r2.remaining_ttl_ms(SimTime::ZERO), 7);
    }

    #[test]
    fn sync_compare_detects_each_divergence_class() {
        let now = SimTime::ZERO + Duration::from_secs(100);
        let live = |version, ttl_s| DhtRecord {
            value: vec![7u8; 3].into(),
            expires_at: now + Duration::from_secs(ttl_s),
            version,
            replica: true,
            replicated_to: Vec::new(),
        };
        let entry_of = |rec: &DhtRecord| sync_digest_entry(key(1), rec, now);
        // Missing local copy: pull.
        assert_eq!(
            sync_compare(&entry_of(&live(3, 60)), None, now),
            SyncAction::Pull
        );
        // Expired local copy counts as missing.
        let mut expired = live(9, 60);
        expired.expires_at = now;
        assert_eq!(
            sync_compare(&entry_of(&live(3, 60)), Some(&expired), now),
            SyncAction::Pull
        );
        // Version ordering dominates both directions.
        assert_eq!(
            sync_compare(&entry_of(&live(5, 60)), Some(&live(3, 600)), now),
            SyncAction::Pull
        );
        assert_eq!(
            sync_compare(&entry_of(&live(3, 600)), Some(&live(5, 60)), now),
            SyncAction::Push
        );
        // Same version + value: small TTL skew is in sync, a renewal-sized
        // gap pulls/pushes.
        assert_eq!(
            sync_compare(&entry_of(&live(3, 60)), Some(&live(3, 58)), now),
            SyncAction::InSync
        );
        assert_eq!(
            sync_compare(&entry_of(&live(3, 90)), Some(&live(3, 60)), now),
            SyncAction::Pull
        );
        assert_eq!(
            sync_compare(&entry_of(&live(3, 60)), Some(&live(3, 90)), now),
            SyncAction::Push
        );
        // Same version, different value: exchange and let the byte-level
        // freshness rule decide.
        let mut other = live(3, 60);
        other.value = vec![9u8; 3].into();
        assert_eq!(
            sync_compare(&entry_of(&live(3, 60)), Some(&other), now),
            SyncAction::Exchange
        );
    }

    #[test]
    fn apply_record_copy_respects_freshness() {
        let now = SimTime::ZERO + Duration::from_secs(10);
        let mut s = SoftStateStore::new();
        let v1: Bytes = b"one".to_vec().into();
        let v2: Bytes = b"two".to_vec().into();
        assert!(apply_record_copy(&mut s, key(1), &v1, 60_000, 5, true, now));
        // A staler push is refused...
        assert!(!apply_record_copy(
            &mut s,
            key(1),
            &v2,
            600_000,
            4,
            true,
            now
        ));
        assert_eq!(s.get(&key(1)).unwrap().value, v1);
        // ...a fresher one replaces.
        assert!(apply_record_copy(&mut s, key(1), &v2, 60_000, 6, true, now));
        assert_eq!(s.get(&key(1)).unwrap().value, v2);
        assert_eq!(s.get(&key(1)).unwrap().version, 6);
    }

    #[test]
    fn freshness_orders_by_version_then_expiry() {
        let t1 = SimTime::ZERO + Duration::from_secs(10);
        let t2 = SimTime::ZERO + Duration::from_secs(20);
        let mut a = rec(3, t1, false);
        let mut b = rec(3, t2, false);
        assert!(
            b.freshness() > a.freshness(),
            "later expiry wins at equal version"
        );
        a.version = 2;
        assert!(
            a.freshness() > b.freshness(),
            "higher version beats later expiry"
        );
        b.version = 2;
        assert!(b.freshness() > a.freshness());
    }
}
