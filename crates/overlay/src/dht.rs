//! Replicated soft-state DHT storage.
//!
//! The paper's self-configuration services (Brunet-ARP, and the address
//! allocation / name services built on top of it) assume a DHT that survives
//! churn. This module provides the storage half of that DHT; the protocol half
//! (routing `DhtPut`/`DhtGet`/`DhtCreate` operations, replicating records to
//! ring neighbours, handing records off on graceful leave) lives in
//! [`crate::node::OverlayNode`].
//!
//! Records are *soft state*: every record carries an absolute expiry instant
//! and is dropped when it passes, so stale data ages out without any explicit
//! invalidation protocol. Publishers keep their records alive by re-putting
//! them at half the TTL (DHCP-style lease renewal); a record whose publisher
//! crashed simply disappears one TTL later.
//!
//! The store sits behind the narrow [`DhtStore`] trait so the node never
//! depends on a concrete container. Implementations must iterate keys in a
//! deterministic order — key scans feed directly into replication-message
//! emission order, and the simulator's byte-identical-replay contract extends
//! to DHT maintenance traffic.

use std::collections::BTreeMap;

use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

use crate::address::Address;

/// Configuration of the DHT subsystem of one overlay node.
#[derive(Clone, Debug)]
pub struct DhtConfig {
    /// Total number of copies of each record (owner plus `replication - 1`
    /// ring neighbours). `1` disables replication.
    pub replication: usize,
    /// TTL applied to records stored without an explicit TTL.
    pub default_ttl: Duration,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            replication: 3,
            default_ttl: Duration::from_secs(120),
        }
    }
}

/// One stored record.
#[derive(Clone, Debug)]
pub struct DhtRecord {
    /// The stored value (shared buffer; cloning a record does not copy it).
    pub value: Bytes,
    /// Instant at which the record silently expires.
    pub expires_at: SimTime,
    /// True while this node holds the record on behalf of the ring owner
    /// (it arrived via replication, not via the put/create delivery path).
    pub replica: bool,
    /// Peers the local node has pushed replicas to (maintained by the owner;
    /// empty on replicas).
    pub replicated_to: Vec<Address>,
}

impl DhtRecord {
    /// The TTL remaining at `now` (zero if expired).
    pub fn remaining_ttl(&self, now: SimTime) -> Duration {
        self.expires_at.saturating_since(now)
    }

    /// Has the record expired at `now`?
    pub fn expired(&self, now: SimTime) -> bool {
        self.expires_at <= now
    }
}

/// The narrow storage interface the overlay node drives.
///
/// `keys()` must return keys in a deterministic (implementation-stable) order:
/// replication traffic is emitted while scanning it.
pub trait DhtStore {
    /// Insert or overwrite the record under `key`.
    fn insert(&mut self, key: Address, record: DhtRecord);
    /// Borrow the record under `key`, if present (expired records may still be
    /// returned until the next [`DhtStore::expire`] sweep — callers that care
    /// check [`DhtRecord::expired`]).
    fn get(&self, key: &Address) -> Option<&DhtRecord>;
    /// Mutably borrow the record under `key`.
    fn get_mut(&mut self, key: &Address) -> Option<&mut DhtRecord>;
    /// Remove and return the record under `key`.
    fn remove(&mut self, key: &Address) -> Option<DhtRecord>;
    /// Drop every expired record; returns how many were dropped.
    fn expire(&mut self, now: SimTime) -> usize;
    /// All stored keys, in deterministic order.
    fn keys(&self) -> Vec<Address>;
    /// Number of stored records.
    fn len(&self) -> usize;
    /// True when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total stored value bytes.
    fn stored_bytes(&self) -> usize;
    /// Number of records held as replicas (not owned).
    fn replicas_held(&self) -> usize;
}

/// The default in-memory soft-state store: a `BTreeMap`, so key iteration is
/// address-ordered and byte-identical across same-seed runs.
#[derive(Debug, Default)]
pub struct SoftStateStore {
    records: BTreeMap<Address, DhtRecord>,
    bytes: usize,
}

impl SoftStateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DhtStore for SoftStateStore {
    fn insert(&mut self, key: Address, record: DhtRecord) {
        self.bytes += record.value.len();
        if let Some(old) = self.records.insert(key, record) {
            self.bytes -= old.value.len();
        }
    }

    fn get(&self, key: &Address) -> Option<&DhtRecord> {
        self.records.get(key)
    }

    fn get_mut(&mut self, key: &Address) -> Option<&mut DhtRecord> {
        self.records.get_mut(key)
    }

    fn remove(&mut self, key: &Address) -> Option<DhtRecord> {
        let removed = self.records.remove(key);
        if let Some(rec) = &removed {
            self.bytes -= rec.value.len();
        }
        removed
    }

    fn expire(&mut self, now: SimTime) -> usize {
        let before = self.records.len();
        let bytes = &mut self.bytes;
        self.records.retain(|_, rec| {
            if rec.expired(now) {
                *bytes -= rec.value.len();
                false
            } else {
                true
            }
        });
        before - self.records.len()
    }

    fn keys(&self) -> Vec<Address> {
        self.records.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn stored_bytes(&self) -> usize {
        self.bytes
    }

    fn replicas_held(&self) -> usize {
        self.records.values().filter(|r| r.replica).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> Address {
        let mut b = [0u8; 20];
        b[0] = n;
        Address(b)
    }

    fn rec(len: usize, expires_at: SimTime, replica: bool) -> DhtRecord {
        DhtRecord {
            value: vec![7u8; len].into(),
            expires_at,
            replica,
            replicated_to: Vec::new(),
        }
    }

    #[test]
    fn insert_tracks_bytes_and_overwrite() {
        let mut s = SoftStateStore::new();
        let t = SimTime::ZERO + Duration::from_secs(10);
        s.insert(key(1), rec(10, t, false));
        s.insert(key(2), rec(5, t, true));
        assert_eq!(s.len(), 2);
        assert_eq!(s.stored_bytes(), 15);
        assert_eq!(s.replicas_held(), 1);
        // Overwrite shrinks the byte count to the new value's size.
        s.insert(key(1), rec(3, t, false));
        assert_eq!(s.stored_bytes(), 8);
        s.remove(&key(2));
        assert_eq!(s.stored_bytes(), 3);
        assert_eq!(s.replicas_held(), 0);
    }

    #[test]
    fn expire_drops_only_stale_records() {
        let mut s = SoftStateStore::new();
        s.insert(
            key(1),
            rec(4, SimTime::ZERO + Duration::from_secs(5), false),
        );
        s.insert(
            key(2),
            rec(4, SimTime::ZERO + Duration::from_secs(50), false),
        );
        assert_eq!(s.expire(SimTime::ZERO + Duration::from_secs(10)), 1);
        assert_eq!(s.len(), 1);
        assert!(s.get(&key(2)).is_some());
        assert_eq!(s.stored_bytes(), 4);
    }

    #[test]
    fn keys_are_ordered() {
        let mut s = SoftStateStore::new();
        let t = SimTime::ZERO + Duration::from_secs(1);
        for n in [9u8, 3, 7, 1] {
            s.insert(key(n), rec(1, t, false));
        }
        assert_eq!(s.keys(), vec![key(1), key(3), key(7), key(9)]);
    }

    #[test]
    fn remaining_ttl_saturates() {
        let r = rec(1, SimTime::ZERO + Duration::from_secs(5), false);
        assert_eq!(r.remaining_ttl(SimTime::ZERO), Duration::from_secs(5));
        assert_eq!(
            r.remaining_ttl(SimTime::ZERO + Duration::from_secs(9)),
            Duration::ZERO
        );
        assert!(r.expired(SimTime::ZERO + Duration::from_secs(5)));
        assert!(!r.expired(SimTime::ZERO + Duration::from_secs(4)));
    }
}
