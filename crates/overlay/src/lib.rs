//! A Brunet-like structured peer-to-peer overlay, built from scratch.
//!
//! The paper's IPOP prototype delegates all of the hard networking problems —
//! connection management, NAT/firewall traversal, routability — to the Brunet
//! library (Section II-C). This crate is the reproduction of that substrate:
//!
//! * [`address`] — 160-bit ring addresses; a node's address is the SHA-1 hash of
//!   its virtual IP.
//! * [`packets`] — the link-level and routed wire formats, including the IP-tunnel
//!   payload of paper Fig. 3.
//! * [`table`] — the connection table with structured-near (ring neighbour) and
//!   structured-far (Kleinberg shortcut) edges.
//! * [`node`] — the protocol engine: greedy structured routing, decentralized
//!   join/leave, ring repair, shortcut formation, hole-punching link establishment
//!   and the protocol half of the DHT (used by IPOP's Brunet-ARP mapper and the
//!   self-configuration services in `ipop-services`).
//! * [`dht`] — replicated soft-state DHT storage: per-record TTL, replica
//!   bookkeeping, and the narrow [`DhtStore`] trait the node drives.
//! * [`transport`] — UDP and TCP adapters that carry overlay traffic over the
//!   host's physical network stack, matching the two Brunet modes the paper
//!   compares in Tables I–III.
//! * [`vstream`] — connection-oriented, ordered, reliable virtual streams
//!   between overlay addresses, multiplexed over routed frames on the same
//!   zero-copy path as the IP tunnel.

pub mod address;
pub mod dht;
pub mod node;
pub mod packets;
pub mod pubsub;
pub mod table;
pub mod transport;
pub mod vstream;

pub use address::{Address, Distance};
pub use dht::{DhtConfig, DhtRecord, DhtStore, SoftStateStore, SyncAction, SyncDigestEntry};
pub use node::{OverlayConfig, OverlayNode, OverlayStats};
pub use packets::{
    ConnectionKind, DeliveryMode, Endpoint, LinkMessage, RoutedPacket, RoutedPayload,
};
pub use table::{Connection, ConnectionState, ConnectionTable};
pub use transport::{OverlayTransport, TcpTransport, TransportMode, UdpTransport};
pub use vstream::{StreamEvent, StreamStats, VStreams, DEFAULT_WINDOW, MAX_SEGMENT};
