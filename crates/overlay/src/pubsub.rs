//! Topic-based publish/subscribe over the ring (pure helpers).
//!
//! A topic lives at `SHA-1("topic:" + name)`: the ring owner of that key — the
//! *topic root* — keeps the subscriber set as an ordinary replicated DHT
//! record, so root crashes re-home the topic exactly like any other key (the
//! new owner already holds a replica, and soft-state subscription renewals
//! repopulate whatever the crash lost). Publishes are routed `Closest` to the
//! topic key; the root fans each one out along a bounded-degree relay tree:
//! the subscriber set is split into at most `fanout` contiguous chunks, the
//! first member of each chunk receives a [`crate::packets::RoutedPayload::PubSubDeliver`]
//! carrying the rest of its chunk as `relay_to`, and re-applies the same split
//! one level down. Every copy shares one wire image of the message body.
//!
//! This module holds the protocol's pure pieces — key derivation, the
//! subscriber-set record codec, and the fan-out planner — so they can be
//! tested without a ring. The stateful half lives in [`crate::node`].

// This is a wire-decode module: decoders must return typed errors, never
// panic (PR 7 contract, machine-checked by ipop-lint rule D3).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use ipop_packet::{Bytes, ParseError};

use crate::address::Address;

/// Bytes of one encoded subscriber-set entry: address 20 + expiry ms 8.
const SUB_ENTRY_BYTES: usize = 28;

/// The DHT key a topic name maps to: `SHA-1("topic:" + name)`. The prefix
/// keeps topic keys from colliding with Brunet-ARP keys derived from raw
/// virtual-IP bytes.
pub fn topic_key(name: &str) -> Address {
    let mut keyed = Vec::with_capacity(6 + name.len());
    keyed.extend_from_slice(b"topic:");
    keyed.extend_from_slice(name.as_bytes());
    Address::from_key(&keyed)
}

/// Encode a subscriber set — `(address, absolute expiry in virtual ms)` pairs
/// — as a DHT record value. Entries must already be in ring order (the
/// `BTreeMap` iteration order of the caller), which keeps re-encodes
/// byte-stable and fan-out plans deterministic.
pub fn encode_subscriber_set(entries: &[(Address, u64)]) -> Bytes {
    let mut buf = Vec::with_capacity(4 + entries.len() * SUB_ENTRY_BYTES);
    buf.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (addr, expires_ms) in entries {
        buf.extend_from_slice(&addr.0);
        buf.extend_from_slice(&expires_ms.to_be_bytes());
    }
    Bytes::from(buf)
}

/// Decode a subscriber-set record value. Rejects inflated counts before
/// allocating and trailing bytes after the last entry, consistent with the
/// wire codec's hardening.
pub fn decode_subscriber_set(value: &Bytes) -> Result<Vec<(Address, u64)>, ParseError> {
    let data = value.as_slice();
    let (count_bytes, body) = data
        .split_first_chunk::<4>()
        .ok_or(ParseError::Truncated("subscriber set"))?;
    let count = u32::from_be_bytes(*count_bytes) as usize;
    if count * SUB_ENTRY_BYTES != body.len() {
        return Err(ParseError::BadLength("subscriber set count"));
    }
    let mut out = Vec::with_capacity(count);
    for entry in body.chunks_exact(SUB_ENTRY_BYTES) {
        let (addr, ms) = entry.split_at(20);
        let addr: [u8; 20] = addr
            .try_into()
            .map_err(|_| ParseError::BadLength("subscriber entry"))?;
        let ms: [u8; 8] = ms
            .try_into()
            .map_err(|_| ParseError::BadLength("subscriber entry"))?;
        out.push((Address(addr), u64::from_be_bytes(ms)));
    }
    Ok(out)
}

/// Split `recipients` into at most `fanout` contiguous chunks and return one
/// `(head, rest-of-chunk)` pair per chunk: the head is sent the message
/// directly and delegated the rest as `relay_to`. Applied recursively at each
/// head, this covers every recipient exactly once with out-degree ≤ `fanout`
/// at every tree node and depth O(log_fanout N).
pub fn plan_fanout(recipients: &[Address], fanout: usize) -> Vec<(Address, Vec<Address>)> {
    let fanout = fanout.max(1);
    let n = recipients.len();
    if n == 0 {
        return Vec::new();
    }
    let chunks = fanout.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut at = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        let chunk = &recipients[at..at + len];
        out.push((chunk[0], chunk[1..].to_vec()));
        at += len;
    }
    debug_assert_eq!(at, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u8) -> Address {
        let mut b = [0u8; 20];
        b[19] = n;
        Address(b)
    }

    #[test]
    fn topic_key_is_prefixed_sha1() {
        assert_eq!(topic_key("chat"), Address::from_key(b"topic:chat"));
        assert_ne!(topic_key("chat"), Address::from_key(b"chat"));
        assert_ne!(topic_key("chat"), topic_key("chat2"));
    }

    #[test]
    fn subscriber_set_round_trips() {
        let entries = vec![(a(1), 1000), (a(2), 2000), (a(9), u64::MAX)];
        let encoded = encode_subscriber_set(&entries);
        assert_eq!(decode_subscriber_set(&encoded).unwrap(), entries);
        assert_eq!(
            decode_subscriber_set(&encode_subscriber_set(&[])).unwrap(),
            vec![]
        );
    }

    #[test]
    fn subscriber_set_rejects_bad_lengths() {
        let encoded = encode_subscriber_set(&[(a(1), 7)]);
        for cut in 0..encoded.len() {
            assert!(
                decode_subscriber_set(&encoded.slice(..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Inflated count with no entry bytes behind it.
        let mut bad = encoded.to_vec();
        bad[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_subscriber_set(&Bytes::from(bad)),
            Err(ParseError::BadLength("subscriber set count"))
        );
        // Trailing garbage after the last entry.
        let mut long = encoded.to_vec();
        long.push(0);
        assert!(decode_subscriber_set(&Bytes::from(long)).is_err());
    }

    #[test]
    fn fanout_plan_covers_every_recipient_once() {
        for n in 0..40usize {
            for fanout in 1..8usize {
                let recipients: Vec<Address> = (0..n).map(|i| a(i as u8)).collect();
                let plan = plan_fanout(&recipients, fanout);
                assert!(plan.len() <= fanout);
                let mut covered: Vec<Address> = Vec::new();
                for (head, rest) in &plan {
                    covered.push(*head);
                    covered.extend_from_slice(rest);
                }
                assert_eq!(covered, recipients, "n={n} fanout={fanout}");
            }
        }
    }

    #[test]
    fn fanout_tree_depth_is_logarithmic() {
        // Recursively expand the plan and measure the deepest chain.
        fn depth(recipients: &[Address], fanout: usize) -> usize {
            plan_fanout(recipients, fanout)
                .iter()
                .map(|(_, rest)| 1 + depth(rest, fanout))
                .max()
                .unwrap_or(0)
        }
        let recipients: Vec<Address> = (0..=255u8).map(a).collect();
        // 256 nodes at fanout 4: depth must be near log₄ 256 = 4, far from
        // the 256 a linear chain would give.
        assert!(depth(&recipients, 4) <= 6);
        assert_eq!(depth(&recipients[..1], 4), 1);
    }
}
