//! Physical transports for overlay traffic.
//!
//! Brunet can run its edges over UDP or TCP (paper Section II-C); Tables I–III
//! compare IPOP in both modes. The adapters here map the overlay's
//! "send this [`LinkMessage`] to that endpoint" interface onto UDP datagrams or
//! length-prefixed TCP streams carried by the host's *physical* [`NetStack`] — so
//! overlay traffic experiences exactly the same kernel stack, NAT and firewall
//! behaviour as any other traffic in the simulation.

use std::collections::BTreeMap;

use ipop_netstack::{NetStack, SocketHandle};
use ipop_packet::Bytes;
use ipop_simcore::SimTime;

use crate::packets::{Endpoint, LinkMessage};

/// Bytes of the optional end-of-message integrity tag.
const TAG_BYTES: usize = 8;

/// FNV-1a over the encoded message. Not cryptographic — it exists to stop
/// corrupted-but-still-parseable packets (the kind an unlucky byte flip
/// produces) from reaching the overlay and minting phantom peers, at a cost
/// of one multiply per byte.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Verify and strip a trailing integrity tag. Returns the body without the
/// tag (a zero-copy sub-slice) or `None` on a short or mismatched tag.
fn check_tag(data: &Bytes) -> Option<Bytes> {
    let len = data.len().checked_sub(TAG_BYTES)?;
    let want = u64::from_be_bytes(data.as_slice()[len..].try_into().ok()?);
    if fnv64(&data.as_slice()[..len]) != want {
        return None;
    }
    Some(data.slice(..len))
}

/// Which physical transport carries overlay traffic.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TransportMode {
    /// One datagram per link message.
    Udp,
    /// Persistent per-peer TCP connections with length-prefixed framing.
    Tcp,
}

/// A transport adapter between an overlay node and the physical stack.
pub trait OverlayTransport {
    /// The mode this adapter implements.
    fn mode(&self) -> TransportMode;
    /// Queue a message for `dst`.
    fn send(&mut self, stack: &mut NetStack, now: SimTime, dst: Endpoint, msg: &LinkMessage);
    /// Collect received messages as `(source endpoint, message)` pairs.
    fn poll(&mut self, stack: &mut NetStack, now: SimTime) -> Vec<(Endpoint, LinkMessage)>;
    /// Running count of datagrams/frames that arrived but failed to decode as
    /// a [`LinkMessage`]. The host agent diffs this across polls to account
    /// malformed traffic in overlay stats.
    fn parse_errors(&self) -> u64;
    /// Running count of messages dropped for a missing or mismatched
    /// integrity tag (a subset of [`Self::parse_errors`]). Zero for adapters
    /// without tag support or with the tag disabled.
    fn tag_rejects(&self) -> u64 {
        0
    }
}

/// UDP transport: one datagram per message.
pub struct UdpTransport {
    socket: SocketHandle,
    /// Append and require the FNV-64 integrity tag on every datagram.
    integrity_tag: bool,
    /// Messages that failed to parse (diagnostics).
    pub parse_errors: u64,
    /// Messages dropped for a bad integrity tag (diagnostics).
    pub tag_rejects: u64,
}

impl UdpTransport {
    /// Bind the overlay UDP port on the given stack.
    pub fn bind(stack: &mut NetStack, port: u16) -> Self {
        let socket = stack.udp_bind(port).expect("overlay UDP port available");
        UdpTransport {
            socket,
            integrity_tag: false,
            parse_errors: 0,
            tag_rejects: 0,
        }
    }

    /// Enable or disable the per-datagram integrity tag. Both ends of every
    /// link must agree: a tagged datagram does not decode untagged and vice
    /// versa.
    pub fn with_integrity_tag(mut self, on: bool) -> Self {
        self.integrity_tag = on;
        self
    }
}

impl OverlayTransport for UdpTransport {
    fn mode(&self) -> TransportMode {
        TransportMode::Udp
    }

    fn send(&mut self, stack: &mut NetStack, _now: SimTime, dst: Endpoint, msg: &LinkMessage) {
        if self.integrity_tag {
            let body = msg.to_wire();
            let mut tagged = Vec::with_capacity(body.len() + TAG_BYTES);
            tagged.extend_from_slice(&body);
            tagged.extend_from_slice(&fnv64(&body).to_be_bytes());
            let _ = stack.udp_send(self.socket, dst.0, dst.1, tagged);
        } else {
            let _ = stack.udp_send(self.socket, dst.0, dst.1, msg.to_wire());
        }
    }

    fn poll(&mut self, stack: &mut NetStack, _now: SimTime) -> Vec<(Endpoint, LinkMessage)> {
        let mut out = Vec::new();
        while let Ok(Some(msg)) = stack.udp_recv(self.socket) {
            let body = if self.integrity_tag {
                match check_tag(&msg.data) {
                    Some(body) => body,
                    None => {
                        self.tag_rejects += 1;
                        self.parse_errors += 1;
                        continue;
                    }
                }
            } else {
                msg.data
            };
            match LinkMessage::from_wire(&body) {
                Ok(parsed) => out.push(((msg.src, msg.src_port), parsed)),
                Err(_) => self.parse_errors += 1,
            }
        }
        out
    }

    fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    fn tag_rejects(&self) -> u64 {
        self.tag_rejects
    }
}

struct TcpPeer {
    handle: SocketHandle,
    rx: Vec<u8>,
    tx_backlog: Vec<u8>,
}

/// TCP transport: one persistent connection per peer, messages framed with a
/// 32-bit big-endian length prefix.
pub struct TcpTransport {
    listener: SocketHandle,
    /// Ordered map: `poll` iterates the peers, and the order in which their
    /// messages surface must be deterministic for same-seed replays.
    peers: BTreeMap<Endpoint, TcpPeer>,
    /// Append and require the FNV-64 integrity tag inside every frame.
    integrity_tag: bool,
    /// Messages that failed to parse (diagnostics).
    pub parse_errors: u64,
    /// Messages dropped for a bad integrity tag (diagnostics).
    pub tag_rejects: u64,
}

impl TcpTransport {
    /// Listen on the overlay TCP port on the given stack.
    pub fn bind(stack: &mut NetStack, port: u16) -> Self {
        let listener = stack.tcp_listen(port).expect("overlay TCP port available");
        TcpTransport {
            listener,
            peers: BTreeMap::new(),
            integrity_tag: false,
            parse_errors: 0,
            tag_rejects: 0,
        }
    }

    /// Enable or disable the per-frame integrity tag. Both ends of every
    /// connection must agree; the tag lives inside the frame body so the
    /// length prefix covers it.
    pub fn with_integrity_tag(mut self, on: bool) -> Self {
        self.integrity_tag = on;
        self
    }

    /// Number of live peer connections.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    fn frame(msg: &LinkMessage, integrity_tag: bool) -> Vec<u8> {
        let body = msg.to_wire();
        let tag_len = if integrity_tag { TAG_BYTES } else { 0 };
        let mut out = Vec::with_capacity(body.len() + 4 + tag_len);
        out.extend_from_slice(&((body.len() + tag_len) as u32).to_be_bytes());
        out.extend_from_slice(&body);
        if integrity_tag {
            out.extend_from_slice(&fnv64(&body).to_be_bytes());
        }
        out
    }

    fn flush_peer(stack: &mut NetStack, peer: &mut TcpPeer) {
        if peer.tx_backlog.is_empty() {
            return;
        }
        if let Ok(sent) = stack.tcp_send(peer.handle, &peer.tx_backlog) {
            peer.tx_backlog.drain(..sent);
        }
    }

    fn extract_frames(
        rx: &mut Vec<u8>,
        integrity_tag: bool,
        errors: &mut u64,
        rejects: &mut u64,
    ) -> Vec<LinkMessage> {
        let mut out = Vec::new();
        loop {
            if rx.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rx[0], rx[1], rx[2], rx[3]]) as usize;
            if rx.len() < 4 + len {
                break;
            }
            let body = Bytes::from(&rx[4..4 + len]);
            rx.drain(..4 + len);
            let body = if integrity_tag {
                match check_tag(&body) {
                    Some(body) => body,
                    None => {
                        *rejects += 1;
                        *errors += 1;
                        continue;
                    }
                }
            } else {
                body
            };
            match LinkMessage::from_wire(&body) {
                Ok(msg) => out.push(msg),
                Err(_) => *errors += 1,
            }
        }
        out
    }
}

impl OverlayTransport for TcpTransport {
    fn mode(&self) -> TransportMode {
        TransportMode::Tcp
    }

    fn send(&mut self, stack: &mut NetStack, now: SimTime, dst: Endpoint, msg: &LinkMessage) {
        let framed = Self::frame(msg, self.integrity_tag);
        let peer = self.peers.entry(dst).or_insert_with(|| {
            let handle = stack
                .tcp_connect(dst.0, dst.1, now)
                .expect("tcp connect allocates a socket");
            TcpPeer {
                handle,
                rx: Vec::new(),
                tx_backlog: Vec::new(),
            }
        });
        peer.tx_backlog.extend_from_slice(&framed);
        Self::flush_peer(stack, peer);
    }

    fn poll(&mut self, stack: &mut NetStack, _now: SimTime) -> Vec<(Endpoint, LinkMessage)> {
        let mut out = Vec::new();
        // Accept new inbound connections; key them by the peer's actual endpoint.
        while let Ok(Some(handle)) = stack.tcp_accept(self.listener) {
            if let Some(sock_remote) = stack.tcp_remote(handle) {
                self.peers.entry(sock_remote).or_insert(TcpPeer {
                    handle,
                    rx: Vec::new(),
                    tx_backlog: Vec::new(),
                });
            }
        }
        let mut dead = Vec::new();
        for (ep, peer) in self.peers.iter_mut() {
            Self::flush_peer(stack, peer);
            loop {
                let chunk = stack.tcp_recv(peer.handle, 64 * 1024).unwrap_or_default();
                if chunk.is_empty() {
                    break;
                }
                peer.rx.extend_from_slice(&chunk);
            }
            for msg in Self::extract_frames(
                &mut peer.rx,
                self.integrity_tag,
                &mut self.parse_errors,
                &mut self.tag_rejects,
            ) {
                out.push((*ep, msg));
            }
            if stack.tcp_is_closed(peer.handle) && peer.rx.is_empty() {
                dead.push(*ep);
            }
        }
        for ep in dead {
            if let Some(p) = self.peers.remove(&ep) {
                stack.release(p.handle);
            }
        }
        out
    }

    fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    fn tag_rejects(&self) -> u64 {
        self.tag_rejects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use ipop_netstack::StackConfig;
    use ipop_simcore::Duration;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pump(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime) {
        for _ in 0..10_000 {
            a.poll(*now);
            b.poll(*now);
            let fa = a.take_packets();
            let fb = b.take_packets();
            if fa.is_empty() && fb.is_empty() {
                break;
            }
            *now += Duration::from_micros(100);
            for p in fa {
                b.handle_packet(*now, p);
            }
            for p in fb {
                a.handle_packet(*now, p);
            }
        }
    }

    fn ping_msg(n: u64) -> LinkMessage {
        LinkMessage::Ping {
            from: Address::from_key(b"t"),
            nonce: n,
        }
    }

    #[test]
    fn udp_transport_round_trip() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = UdpTransport::bind(&mut sa, 4001);
        let mut tb = UdpTransport::bind(&mut sb, 4001);
        let mut now = SimTime::ZERO;
        ta.send(&mut sa, now, (B, 4001), &ping_msg(7));
        pump(&mut sa, &mut sb, &mut now);
        let got = tb.poll(&mut sb, now);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, ping_msg(7));
        assert_eq!(got[0].0 .0, A);
        assert_eq!(ta.mode(), TransportMode::Udp);
    }

    #[test]
    fn udp_transport_counts_garbage() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let sock = sa.udp_bind(9999).unwrap();
        let mut tb = UdpTransport::bind(&mut sb, 4001);
        sa.udp_send(sock, B, 4001, vec![0xFF, 0xFE]).unwrap();
        let mut now = SimTime::ZERO;
        pump(&mut sa, &mut sb, &mut now);
        assert!(tb.poll(&mut sb, now).is_empty());
        assert_eq!(tb.parse_errors, 1);
    }

    #[test]
    fn tcp_transport_round_trip_and_reuse() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = TcpTransport::bind(&mut sa, 4001);
        let mut tb = TcpTransport::bind(&mut sb, 4001);
        let mut now = SimTime::ZERO;
        ta.send(&mut sa, now, (B, 4001), &ping_msg(1));
        ta.send(&mut sa, now, (B, 4001), &ping_msg(2));
        // Let the handshake and data flow; poll repeatedly as data arrives.
        let mut got = Vec::new();
        for _ in 0..50 {
            pump(&mut sa, &mut sb, &mut now);
            got.extend(tb.poll(&mut sb, now));
            ta.poll(&mut sa, now);
            if got.len() >= 2 {
                break;
            }
            now += Duration::from_millis(10);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, ping_msg(1));
        assert_eq!(got[1].1, ping_msg(2));
        assert_eq!(ta.peer_count(), 1, "a single TCP connection is reused");
        assert_eq!(ta.mode(), TransportMode::Tcp);

        // The receiver can answer over the same (accepted) connection.
        let reply_to = got[0].0;
        tb.send(&mut sb, now, reply_to, &ping_msg(3));
        let mut back = Vec::new();
        for _ in 0..50 {
            pump(&mut sa, &mut sb, &mut now);
            back.extend(ta.poll(&mut sa, now));
            tb.poll(&mut sb, now);
            if !back.is_empty() {
                break;
            }
            now += Duration::from_millis(10);
        }
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1, ping_msg(3));
        assert_eq!(tb.peer_count(), 1);
    }

    #[test]
    fn udp_integrity_tag_round_trips_and_rejects_corruption() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = UdpTransport::bind(&mut sa, 4001).with_integrity_tag(true);
        let mut tb = UdpTransport::bind(&mut sb, 4001).with_integrity_tag(true);
        let mut now = SimTime::ZERO;

        // Clean round trip with the tag on.
        ta.send(&mut sa, now, (B, 4001), &ping_msg(7));
        pump(&mut sa, &mut sb, &mut now);
        let got = tb.poll(&mut sb, now);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, ping_msg(7));
        assert_eq!(tb.tag_rejects(), 0);

        // A corrupted-but-parseable datagram: flip one payload byte and
        // recompute nothing. Without the tag this would decode as a valid
        // message from a phantom address; with it, the receiver drops it.
        let mut wire = ping_msg(7).to_wire().to_vec();
        let tag = fnv64(&wire).to_be_bytes();
        wire[5] ^= 0x40;
        wire.extend_from_slice(&tag);
        assert!(
            LinkMessage::from_bytes(&wire[..wire.len() - TAG_BYTES]).is_ok(),
            "the corrupted body must still parse, or the tag proves nothing"
        );
        let raw = sa.udp_bind(9998).unwrap();
        sa.udp_send(raw, B, 4001, wire).unwrap();
        pump(&mut sa, &mut sb, &mut now);
        assert!(tb.poll(&mut sb, now).is_empty());
        assert_eq!(tb.tag_rejects(), 1);
        assert_eq!(tb.parse_errors, 1);

        // Too short to even hold a tag.
        sa.udp_send(raw, B, 4001, vec![1, 2, 3]).unwrap();
        pump(&mut sa, &mut sb, &mut now);
        assert!(tb.poll(&mut sb, now).is_empty());
        assert_eq!(tb.tag_rejects(), 2);
    }

    #[test]
    fn tcp_integrity_tag_round_trips_and_rejects_corruption() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = TcpTransport::bind(&mut sa, 4001).with_integrity_tag(true);
        let mut tb = TcpTransport::bind(&mut sb, 4001).with_integrity_tag(true);
        let mut now = SimTime::ZERO;
        ta.send(&mut sa, now, (B, 4001), &ping_msg(9));
        let mut got = Vec::new();
        for _ in 0..50 {
            pump(&mut sa, &mut sb, &mut now);
            got.extend(tb.poll(&mut sb, now));
            ta.poll(&mut sa, now);
            if !got.is_empty() {
                break;
            }
            now += Duration::from_millis(10);
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, ping_msg(9));
        assert_eq!(tb.tag_rejects(), 0);

        // Corrupt one body byte inside an otherwise well-formed frame; the
        // stream resynchronises on the next frame because the length prefix
        // is intact.
        let mut frame = TcpTransport::frame(&ping_msg(9), true);
        frame[6] ^= 0x04;
        frame.extend_from_slice(&TcpTransport::frame(&ping_msg(10), true));
        let mut rx = frame;
        let (mut errors, mut rejects) = (0, 0);
        let out = TcpTransport::extract_frames(&mut rx, true, &mut errors, &mut rejects);
        assert_eq!(out, vec![ping_msg(10)]);
        assert_eq!((errors, rejects), (1, 1));
    }

    #[test]
    fn integrity_tag_off_keeps_the_wire_format_unchanged() {
        // Tag-off peers speak the seed wire format byte for byte.
        assert_eq!(
            TcpTransport::frame(&ping_msg(1), false).len(),
            TcpTransport::frame(&ping_msg(1), true).len() - TAG_BYTES
        );
        let body = ping_msg(1).to_wire();
        let framed = TcpTransport::frame(&ping_msg(1), false);
        assert_eq!(&framed[4..], body.as_slice());
    }

    #[test]
    fn tcp_transport_handles_large_messages_across_segments() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = TcpTransport::bind(&mut sa, 4001);
        let mut tb = TcpTransport::bind(&mut sb, 4001);
        let mut now = SimTime::ZERO;
        let big = LinkMessage::Routed(crate::packets::RoutedPacket::new(
            Address::from_key(b"a"),
            Address::from_key(b"b"),
            crate::packets::DeliveryMode::Exact,
            crate::packets::RoutedPayload::IpTunnel(vec![0x55; 20_000].into()),
        ));
        ta.send(&mut sa, now, (B, 4001), &big);
        let mut got = Vec::new();
        for _ in 0..200 {
            pump(&mut sa, &mut sb, &mut now);
            ta.poll(&mut sa, now);
            got.extend(tb.poll(&mut sb, now));
            if !got.is_empty() {
                break;
            }
            now += Duration::from_millis(5);
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, big);
    }
}
