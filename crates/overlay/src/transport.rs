//! Physical transports for overlay traffic.
//!
//! Brunet can run its edges over UDP or TCP (paper Section II-C); Tables I–III
//! compare IPOP in both modes. The adapters here map the overlay's
//! "send this [`LinkMessage`] to that endpoint" interface onto UDP datagrams or
//! length-prefixed TCP streams carried by the host's *physical* [`NetStack`] — so
//! overlay traffic experiences exactly the same kernel stack, NAT and firewall
//! behaviour as any other traffic in the simulation.

use std::collections::BTreeMap;

use ipop_netstack::{NetStack, SocketHandle};
use ipop_simcore::SimTime;

use crate::packets::{Endpoint, LinkMessage};

/// Which physical transport carries overlay traffic.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TransportMode {
    /// One datagram per link message.
    Udp,
    /// Persistent per-peer TCP connections with length-prefixed framing.
    Tcp,
}

/// A transport adapter between an overlay node and the physical stack.
pub trait OverlayTransport {
    /// The mode this adapter implements.
    fn mode(&self) -> TransportMode;
    /// Queue a message for `dst`.
    fn send(&mut self, stack: &mut NetStack, now: SimTime, dst: Endpoint, msg: &LinkMessage);
    /// Collect received messages as `(source endpoint, message)` pairs.
    fn poll(&mut self, stack: &mut NetStack, now: SimTime) -> Vec<(Endpoint, LinkMessage)>;
    /// Running count of datagrams/frames that arrived but failed to decode as
    /// a [`LinkMessage`]. The host agent diffs this across polls to account
    /// malformed traffic in overlay stats.
    fn parse_errors(&self) -> u64;
}

/// UDP transport: one datagram per message.
pub struct UdpTransport {
    socket: SocketHandle,
    /// Messages that failed to parse (diagnostics).
    pub parse_errors: u64,
}

impl UdpTransport {
    /// Bind the overlay UDP port on the given stack.
    pub fn bind(stack: &mut NetStack, port: u16) -> Self {
        let socket = stack.udp_bind(port).expect("overlay UDP port available");
        UdpTransport {
            socket,
            parse_errors: 0,
        }
    }
}

impl OverlayTransport for UdpTransport {
    fn mode(&self) -> TransportMode {
        TransportMode::Udp
    }

    fn send(&mut self, stack: &mut NetStack, _now: SimTime, dst: Endpoint, msg: &LinkMessage) {
        let _ = stack.udp_send(self.socket, dst.0, dst.1, msg.to_wire());
    }

    fn poll(&mut self, stack: &mut NetStack, _now: SimTime) -> Vec<(Endpoint, LinkMessage)> {
        let mut out = Vec::new();
        while let Ok(Some(msg)) = stack.udp_recv(self.socket) {
            match LinkMessage::from_wire(&msg.data) {
                Ok(parsed) => out.push(((msg.src, msg.src_port), parsed)),
                Err(_) => self.parse_errors += 1,
            }
        }
        out
    }

    fn parse_errors(&self) -> u64 {
        self.parse_errors
    }
}

struct TcpPeer {
    handle: SocketHandle,
    rx: Vec<u8>,
    tx_backlog: Vec<u8>,
}

/// TCP transport: one persistent connection per peer, messages framed with a
/// 32-bit big-endian length prefix.
pub struct TcpTransport {
    listener: SocketHandle,
    /// Ordered map: `poll` iterates the peers, and the order in which their
    /// messages surface must be deterministic for same-seed replays.
    peers: BTreeMap<Endpoint, TcpPeer>,
    /// Messages that failed to parse (diagnostics).
    pub parse_errors: u64,
}

impl TcpTransport {
    /// Listen on the overlay TCP port on the given stack.
    pub fn bind(stack: &mut NetStack, port: u16) -> Self {
        let listener = stack.tcp_listen(port).expect("overlay TCP port available");
        TcpTransport {
            listener,
            peers: BTreeMap::new(),
            parse_errors: 0,
        }
    }

    /// Number of live peer connections.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    fn frame(msg: &LinkMessage) -> Vec<u8> {
        let body = msg.to_wire();
        let mut out = Vec::with_capacity(body.len() + 4);
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn flush_peer(stack: &mut NetStack, peer: &mut TcpPeer) {
        if peer.tx_backlog.is_empty() {
            return;
        }
        if let Ok(sent) = stack.tcp_send(peer.handle, &peer.tx_backlog) {
            peer.tx_backlog.drain(..sent);
        }
    }

    fn extract_frames(rx: &mut Vec<u8>, errors: &mut u64) -> Vec<LinkMessage> {
        let mut out = Vec::new();
        loop {
            if rx.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rx[0], rx[1], rx[2], rx[3]]) as usize;
            if rx.len() < 4 + len {
                break;
            }
            let body = ipop_packet::Bytes::from(&rx[4..4 + len]);
            rx.drain(..4 + len);
            match LinkMessage::from_wire(&body) {
                Ok(msg) => out.push(msg),
                Err(_) => *errors += 1,
            }
        }
        out
    }
}

impl OverlayTransport for TcpTransport {
    fn mode(&self) -> TransportMode {
        TransportMode::Tcp
    }

    fn send(&mut self, stack: &mut NetStack, now: SimTime, dst: Endpoint, msg: &LinkMessage) {
        let framed = Self::frame(msg);
        let peer = self.peers.entry(dst).or_insert_with(|| {
            let handle = stack
                .tcp_connect(dst.0, dst.1, now)
                .expect("tcp connect allocates a socket");
            TcpPeer {
                handle,
                rx: Vec::new(),
                tx_backlog: Vec::new(),
            }
        });
        peer.tx_backlog.extend_from_slice(&framed);
        Self::flush_peer(stack, peer);
    }

    fn poll(&mut self, stack: &mut NetStack, _now: SimTime) -> Vec<(Endpoint, LinkMessage)> {
        let mut out = Vec::new();
        // Accept new inbound connections; key them by the peer's actual endpoint.
        while let Ok(Some(handle)) = stack.tcp_accept(self.listener) {
            if let Some(sock_remote) = stack.tcp_remote(handle) {
                self.peers.entry(sock_remote).or_insert(TcpPeer {
                    handle,
                    rx: Vec::new(),
                    tx_backlog: Vec::new(),
                });
            }
        }
        let mut dead = Vec::new();
        for (ep, peer) in self.peers.iter_mut() {
            Self::flush_peer(stack, peer);
            loop {
                let chunk = stack.tcp_recv(peer.handle, 64 * 1024).unwrap_or_default();
                if chunk.is_empty() {
                    break;
                }
                peer.rx.extend_from_slice(&chunk);
            }
            for msg in Self::extract_frames(&mut peer.rx, &mut self.parse_errors) {
                out.push((*ep, msg));
            }
            if stack.tcp_is_closed(peer.handle) && peer.rx.is_empty() {
                dead.push(*ep);
            }
        }
        for ep in dead {
            if let Some(p) = self.peers.remove(&ep) {
                stack.release(p.handle);
            }
        }
        out
    }

    fn parse_errors(&self) -> u64 {
        self.parse_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use ipop_netstack::StackConfig;
    use ipop_simcore::Duration;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pump(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime) {
        for _ in 0..10_000 {
            a.poll(*now);
            b.poll(*now);
            let fa = a.take_packets();
            let fb = b.take_packets();
            if fa.is_empty() && fb.is_empty() {
                break;
            }
            *now += Duration::from_micros(100);
            for p in fa {
                b.handle_packet(*now, p);
            }
            for p in fb {
                a.handle_packet(*now, p);
            }
        }
    }

    fn ping_msg(n: u64) -> LinkMessage {
        LinkMessage::Ping {
            from: Address::from_key(b"t"),
            nonce: n,
        }
    }

    #[test]
    fn udp_transport_round_trip() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = UdpTransport::bind(&mut sa, 4001);
        let mut tb = UdpTransport::bind(&mut sb, 4001);
        let mut now = SimTime::ZERO;
        ta.send(&mut sa, now, (B, 4001), &ping_msg(7));
        pump(&mut sa, &mut sb, &mut now);
        let got = tb.poll(&mut sb, now);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, ping_msg(7));
        assert_eq!(got[0].0 .0, A);
        assert_eq!(ta.mode(), TransportMode::Udp);
    }

    #[test]
    fn udp_transport_counts_garbage() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let sock = sa.udp_bind(9999).unwrap();
        let mut tb = UdpTransport::bind(&mut sb, 4001);
        sa.udp_send(sock, B, 4001, vec![0xFF, 0xFE]).unwrap();
        let mut now = SimTime::ZERO;
        pump(&mut sa, &mut sb, &mut now);
        assert!(tb.poll(&mut sb, now).is_empty());
        assert_eq!(tb.parse_errors, 1);
    }

    #[test]
    fn tcp_transport_round_trip_and_reuse() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = TcpTransport::bind(&mut sa, 4001);
        let mut tb = TcpTransport::bind(&mut sb, 4001);
        let mut now = SimTime::ZERO;
        ta.send(&mut sa, now, (B, 4001), &ping_msg(1));
        ta.send(&mut sa, now, (B, 4001), &ping_msg(2));
        // Let the handshake and data flow; poll repeatedly as data arrives.
        let mut got = Vec::new();
        for _ in 0..50 {
            pump(&mut sa, &mut sb, &mut now);
            got.extend(tb.poll(&mut sb, now));
            ta.poll(&mut sa, now);
            if got.len() >= 2 {
                break;
            }
            now += Duration::from_millis(10);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, ping_msg(1));
        assert_eq!(got[1].1, ping_msg(2));
        assert_eq!(ta.peer_count(), 1, "a single TCP connection is reused");
        assert_eq!(ta.mode(), TransportMode::Tcp);

        // The receiver can answer over the same (accepted) connection.
        let reply_to = got[0].0;
        tb.send(&mut sb, now, reply_to, &ping_msg(3));
        let mut back = Vec::new();
        for _ in 0..50 {
            pump(&mut sa, &mut sb, &mut now);
            back.extend(ta.poll(&mut sa, now));
            tb.poll(&mut sb, now);
            if !back.is_empty() {
                break;
            }
            now += Duration::from_millis(10);
        }
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1, ping_msg(3));
        assert_eq!(tb.peer_count(), 1);
    }

    #[test]
    fn tcp_transport_handles_large_messages_across_segments() {
        let mut sa = NetStack::new(StackConfig::new(A));
        let mut sb = NetStack::new(StackConfig::new(B));
        let mut ta = TcpTransport::bind(&mut sa, 4001);
        let mut tb = TcpTransport::bind(&mut sb, 4001);
        let mut now = SimTime::ZERO;
        let big = LinkMessage::Routed(crate::packets::RoutedPacket::new(
            Address::from_key(b"a"),
            Address::from_key(b"b"),
            crate::packets::DeliveryMode::Exact,
            crate::packets::RoutedPayload::IpTunnel(vec![0x55; 20_000].into()),
        ));
        ta.send(&mut sa, now, (B, 4001), &big);
        let mut got = Vec::new();
        for _ in 0..200 {
            pump(&mut sa, &mut sb, &mut now);
            ta.poll(&mut sa, now);
            got.extend(tb.poll(&mut sb, now));
            if !got.is_empty() {
                break;
            }
            now += Duration::from_millis(5);
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, big);
    }
}
