//! The connection table: the node's view of its edges on the ring.
//!
//! Brunet distinguishes *structured near* connections (the immediate ring
//! neighbours, which guarantee routability) from *structured far* connections
//! (Kleinberg-style shortcuts that give logarithmic routing) and *leaf*
//! connections (bootstrap edges kept while joining). Greedy routing consults this
//! table: a packet is forwarded to the connection whose address is closest to the
//! destination.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use ipop_simcore::SimTime;

use crate::address::{Address, Distance};
use crate::packets::{ConnectionKind, Endpoint};

/// State of an edge.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ConnectionState {
    /// Handshake in progress (Hello sent, no ack yet).
    Connecting,
    /// Edge is usable for routing.
    Established,
}

/// A directed edge to a peer.
#[derive(Clone, Debug)]
pub struct Connection {
    /// Peer overlay address.
    pub peer: Address,
    /// Physical endpoint we reach the peer at.
    pub endpoint: Endpoint,
    /// Near / far / leaf.
    pub kind: ConnectionKind,
    /// Handshake state.
    pub state: ConnectionState,
    /// When we last heard from the peer (any message).
    pub last_heard: SimTime,
    /// When we last sent a keep-alive ping.
    pub last_ping_sent: SimTime,
}

/// The set of edges of one node.
///
/// Keyed by a `BTreeMap` so every iteration order is deterministic: edge scans
/// feed directly into message emission order, and the simulator guarantees
/// that identical seeds replay identically.
///
/// A secondary ordered index over the *established* peer addresses makes the
/// per-hop lookups (`closest_to`, `right_neighbors`, …) O(log E) range queries
/// instead of full-table scans: the closest peer to a target on a ring is
/// always the target's predecessor or successor in circular address order.
#[derive(Debug, Default)]
pub struct ConnectionTable {
    connections: BTreeMap<Address, Connection>,
    /// Addresses of connections in `Established` state, in ring order.
    /// Maintained by `upsert`/`remove`; state never changes in place.
    established: BTreeSet<Address>,
}

impl ConnectionTable {
    /// An empty table.
    pub fn new() -> Self {
        ConnectionTable::default()
    }

    /// Number of edges (any state).
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True when no edges exist.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Insert or update an edge.
    pub fn upsert(&mut self, conn: Connection) {
        let peer = conn.peer;
        let established = conn.state == ConnectionState::Established;
        self.connections.insert(peer, conn);
        if established {
            self.established.insert(peer);
        } else {
            self.established.remove(&peer);
        }
    }

    /// Remove an edge.
    pub fn remove(&mut self, peer: &Address) -> Option<Connection> {
        self.established.remove(peer);
        self.connections.remove(peer)
    }

    /// Borrow an edge.
    pub fn get(&self, peer: &Address) -> Option<&Connection> {
        self.connections.get(peer)
    }

    /// Borrow an edge mutably — for liveness bookkeeping (`last_heard`,
    /// `last_ping_sent`, `endpoint`) only. `peer` and `state` must not change
    /// through this handle or the established index desynchronises; state
    /// transitions go through [`ConnectionTable::upsert`].
    pub fn get_mut(&mut self, peer: &Address) -> Option<&mut Connection> {
        self.connections.get_mut(peer)
    }

    /// Does an edge to `peer` exist (in any state)?
    pub fn contains(&self, peer: &Address) -> bool {
        self.connections.contains_key(peer)
    }

    /// Iterate over all edges.
    pub fn iter(&self) -> impl Iterator<Item = &Connection> {
        self.connections.values()
    }

    /// Established edges only, in ascending address order.
    pub fn established(&self) -> impl Iterator<Item = &Connection> {
        self.established.iter().map(|a| &self.connections[a])
    }

    /// Number of established edges of a given kind.
    pub fn count_kind(&self, kind: ConnectionKind) -> usize {
        self.established().filter(|c| c.kind == kind).count()
    }

    /// The established connection whose address is closest (ring distance) to
    /// `target`, if any.
    pub fn closest_to(&self, target: &Address) -> Option<&Connection> {
        self.closest_to_excluding(target, None)
    }

    /// Like [`ConnectionTable::closest_to`], but never returns the connection to
    /// `exclude`. Used when routing a connect request toward the initiator's own
    /// address: the packet must terminate at the initiator's nearest *other*
    /// node, not bounce straight back to the initiator.
    ///
    /// Ring distance is unimodal in circular address order from `target`
    /// (it grows with the clockwise offset up to the antipode, then shrinks),
    /// so the minimum over any peer subset is attained at the subset's first
    /// or last element in that order. With at most one excluded peer it is
    /// enough to inspect the first non-excluded peer on each side of `target`
    /// — two O(log E) range probes instead of a full scan. Distance ties
    /// resolve to the smaller address, matching what a `min_by_key` over
    /// ascending-address iteration returned.
    pub fn closest_to_excluding(
        &self,
        target: &Address,
        exclude: Option<&Address>,
    ) -> Option<&Connection> {
        let not_excluded = |a: &&Address| exclude != Some(*a);
        // Successor side: `target` and up, wrapping to the bottom of the ring.
        let cw = self
            .established
            .range(*target..)
            .chain(self.established.range(..*target))
            .find(not_excluded);
        // Predecessor side: just below `target`, wrapping to the top.
        let ccw = self
            .established
            .range(..*target)
            .rev()
            .chain(self.established.range(*target..).rev())
            .find(not_excluded);
        let mut best: Option<(Distance, &Address)> = None;
        for cand in [cw, ccw].into_iter().flatten() {
            let key = (cand.ring_distance(target), cand);
            if best.is_none_or(|(d, a)| key < (d, a)) {
                best = Some(key);
            }
        }
        best.map(|(_, a)| &self.connections[a])
    }

    /// The ring distance from the closest established connection to `target`
    /// (`Distance::MAX` when the table is empty).
    pub fn best_distance_to(&self, target: &Address) -> Distance {
        self.closest_to(target)
            .map_or(Distance::MAX, |c| c.peer.ring_distance(target))
    }

    /// The `count` established peers nearest to `me` in the clockwise (right)
    /// direction, closest first: ascending addresses from `me`, wrapping.
    pub fn right_neighbors(&self, me: &Address, count: usize) -> Vec<&Connection> {
        self.established
            .range(*me..)
            .chain(self.established.range(..*me))
            .take(count)
            .map(|a| &self.connections[a])
            .collect()
    }

    /// The `count` established peers nearest to `me` in the counter-clockwise
    /// (left) direction, closest first: descending addresses from `me`, wrapping.
    pub fn left_neighbors(&self, me: &Address, count: usize) -> Vec<&Connection> {
        self.established
            .get(me)
            .into_iter()
            .chain(self.established.range(..*me).rev())
            .chain(
                self.established
                    .range((Bound::Excluded(*me), Bound::Unbounded))
                    .rev(),
            )
            .take(count)
            .map(|a| &self.connections[a])
            .collect()
    }

    /// All established peer addresses.
    pub fn peers(&self) -> Vec<Address> {
        self.established.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(n: u8) -> Address {
        let mut b = [0u8; 20];
        b[0] = n;
        Address(b)
    }

    fn conn(n: u8, kind: ConnectionKind, state: ConnectionState) -> Connection {
        Connection {
            peer: addr(n),
            endpoint: (Ipv4Addr::new(10, 0, 0, n), 4001),
            kind,
            state,
            last_heard: SimTime::ZERO,
            last_ping_sent: SimTime::ZERO,
        }
    }

    #[test]
    fn upsert_get_remove() {
        let mut t = ConnectionTable::new();
        assert!(t.is_empty());
        t.upsert(conn(1, ConnectionKind::Near, ConnectionState::Established));
        t.upsert(conn(1, ConnectionKind::Near, ConnectionState::Established));
        assert_eq!(t.len(), 1, "upsert replaces");
        assert!(t.contains(&addr(1)));
        assert!(t.get(&addr(1)).is_some());
        assert!(t.remove(&addr(1)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn closest_ignores_connecting_edges() {
        let mut t = ConnectionTable::new();
        t.upsert(conn(
            0x10,
            ConnectionKind::Near,
            ConnectionState::Connecting,
        ));
        t.upsert(conn(
            0x80,
            ConnectionKind::Near,
            ConnectionState::Established,
        ));
        let target = addr(0x11);
        assert_eq!(t.closest_to(&target).unwrap().peer, addr(0x80));
        assert_eq!(t.count_kind(ConnectionKind::Near), 1);
    }

    #[test]
    fn closest_picks_minimum_ring_distance() {
        let mut t = ConnectionTable::new();
        for n in [0x10, 0x40, 0xA0, 0xF0] {
            t.upsert(conn(n, ConnectionKind::Far, ConnectionState::Established));
        }
        assert_eq!(t.closest_to(&addr(0x45)).unwrap().peer, addr(0x40));
        // Wrap-around: 0x02 is closer to 0xF0 than to 0x10? cw(0xF0->0x02)=0x12..,
        // ring distance to 0x10 is 0x0E — so 0x10 wins.
        assert_eq!(t.closest_to(&addr(0x02)).unwrap().peer, addr(0x10));
        assert_eq!(t.best_distance_to(&addr(0x40)), Distance::ZERO);
    }

    #[test]
    fn empty_table_has_max_distance() {
        let t = ConnectionTable::new();
        assert_eq!(t.best_distance_to(&addr(5)), Distance::MAX);
        assert!(t.closest_to(&addr(5)).is_none());
    }

    #[test]
    fn left_and_right_neighbors() {
        let mut t = ConnectionTable::new();
        for n in [0x10, 0x30, 0x70, 0xC0] {
            t.upsert(conn(n, ConnectionKind::Near, ConnectionState::Established));
        }
        let me = addr(0x50);
        let right: Vec<_> = t.right_neighbors(&me, 2).iter().map(|c| c.peer).collect();
        assert_eq!(right, vec![addr(0x70), addr(0xC0)]);
        let left: Vec<_> = t.left_neighbors(&me, 2).iter().map(|c| c.peer).collect();
        assert_eq!(left, vec![addr(0x30), addr(0x10)]);
        // Wrap-around: from 0x05 the nearest left neighbour is 0xC0.
        let left_wrap: Vec<_> = t
            .left_neighbors(&addr(0x05), 1)
            .iter()
            .map(|c| c.peer)
            .collect();
        assert_eq!(left_wrap, vec![addr(0xC0)]);
    }

    #[test]
    fn peers_lists_established_only() {
        let mut t = ConnectionTable::new();
        t.upsert(conn(1, ConnectionKind::Near, ConnectionState::Established));
        t.upsert(conn(2, ConnectionKind::Far, ConnectionState::Connecting));
        assert_eq!(t.peers(), vec![addr(1)]);
    }
}
