//! The connection table: the node's view of its edges on the ring.
//!
//! Brunet distinguishes *structured near* connections (the immediate ring
//! neighbours, which guarantee routability) from *structured far* connections
//! (Kleinberg-style shortcuts that give logarithmic routing) and *leaf*
//! connections (bootstrap edges kept while joining). Greedy routing consults this
//! table: a packet is forwarded to the connection whose address is closest to the
//! destination.

use std::collections::BTreeMap;

use ipop_simcore::SimTime;

use crate::address::{Address, Distance};
use crate::packets::{ConnectionKind, Endpoint};

/// State of an edge.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ConnectionState {
    /// Handshake in progress (Hello sent, no ack yet).
    Connecting,
    /// Edge is usable for routing.
    Established,
}

/// A directed edge to a peer.
#[derive(Clone, Debug)]
pub struct Connection {
    /// Peer overlay address.
    pub peer: Address,
    /// Physical endpoint we reach the peer at.
    pub endpoint: Endpoint,
    /// Near / far / leaf.
    pub kind: ConnectionKind,
    /// Handshake state.
    pub state: ConnectionState,
    /// When we last heard from the peer (any message).
    pub last_heard: SimTime,
    /// When we last sent a keep-alive ping.
    pub last_ping_sent: SimTime,
}

/// The set of edges of one node.
///
/// Keyed by a `BTreeMap` so every iteration order is deterministic: edge scans
/// feed directly into message emission order, and the simulator guarantees
/// that identical seeds replay identically.
#[derive(Debug, Default)]
pub struct ConnectionTable {
    connections: BTreeMap<Address, Connection>,
}

impl ConnectionTable {
    /// An empty table.
    pub fn new() -> Self {
        ConnectionTable {
            connections: BTreeMap::new(),
        }
    }

    /// Number of edges (any state).
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True when no edges exist.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Insert or update an edge.
    pub fn upsert(&mut self, conn: Connection) {
        self.connections.insert(conn.peer, conn);
    }

    /// Remove an edge.
    pub fn remove(&mut self, peer: &Address) -> Option<Connection> {
        self.connections.remove(peer)
    }

    /// Borrow an edge.
    pub fn get(&self, peer: &Address) -> Option<&Connection> {
        self.connections.get(peer)
    }

    /// Borrow an edge mutably.
    pub fn get_mut(&mut self, peer: &Address) -> Option<&mut Connection> {
        self.connections.get_mut(peer)
    }

    /// Does an edge to `peer` exist (in any state)?
    pub fn contains(&self, peer: &Address) -> bool {
        self.connections.contains_key(peer)
    }

    /// Iterate over all edges.
    pub fn iter(&self) -> impl Iterator<Item = &Connection> {
        self.connections.values()
    }

    /// Iterate over all edges mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Connection> {
        self.connections.values_mut()
    }

    /// Established edges only.
    pub fn established(&self) -> impl Iterator<Item = &Connection> {
        self.connections
            .values()
            .filter(|c| c.state == ConnectionState::Established)
    }

    /// Number of established edges of a given kind.
    pub fn count_kind(&self, kind: ConnectionKind) -> usize {
        self.established().filter(|c| c.kind == kind).count()
    }

    /// The established connection whose address is closest (ring distance) to
    /// `target`, if any.
    pub fn closest_to(&self, target: &Address) -> Option<&Connection> {
        self.closest_to_excluding(target, None)
    }

    /// Like [`ConnectionTable::closest_to`], but never returns the connection to
    /// `exclude`. Used when routing a connect request toward the initiator's own
    /// address: the packet must terminate at the initiator's nearest *other*
    /// node, not bounce straight back to the initiator.
    pub fn closest_to_excluding(
        &self,
        target: &Address,
        exclude: Option<&Address>,
    ) -> Option<&Connection> {
        self.established()
            .filter(|c| exclude != Some(&c.peer))
            .min_by_key(|c| c.peer.ring_distance(target))
    }

    /// The ring distance from the closest established connection to `target`
    /// (`Distance::MAX` when the table is empty).
    pub fn best_distance_to(&self, target: &Address) -> Distance {
        self.closest_to(target)
            .map_or(Distance::MAX, |c| c.peer.ring_distance(target))
    }

    /// The `count` established peers nearest to `me` in the clockwise (right)
    /// direction, closest first.
    pub fn right_neighbors(&self, me: &Address, count: usize) -> Vec<&Connection> {
        let mut peers: Vec<&Connection> = self.established().collect();
        peers.sort_by_key(|c| me.clockwise_distance(&c.peer));
        peers.into_iter().take(count).collect()
    }

    /// The `count` established peers nearest to `me` in the counter-clockwise
    /// (left) direction, closest first.
    pub fn left_neighbors(&self, me: &Address, count: usize) -> Vec<&Connection> {
        let mut peers: Vec<&Connection> = self.established().collect();
        peers.sort_by_key(|c| c.peer.clockwise_distance(me));
        peers.into_iter().take(count).collect()
    }

    /// All established peer addresses.
    pub fn peers(&self) -> Vec<Address> {
        self.established().map(|c| c.peer).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(n: u8) -> Address {
        let mut b = [0u8; 20];
        b[0] = n;
        Address(b)
    }

    fn conn(n: u8, kind: ConnectionKind, state: ConnectionState) -> Connection {
        Connection {
            peer: addr(n),
            endpoint: (Ipv4Addr::new(10, 0, 0, n), 4001),
            kind,
            state,
            last_heard: SimTime::ZERO,
            last_ping_sent: SimTime::ZERO,
        }
    }

    #[test]
    fn upsert_get_remove() {
        let mut t = ConnectionTable::new();
        assert!(t.is_empty());
        t.upsert(conn(1, ConnectionKind::Near, ConnectionState::Established));
        t.upsert(conn(1, ConnectionKind::Near, ConnectionState::Established));
        assert_eq!(t.len(), 1, "upsert replaces");
        assert!(t.contains(&addr(1)));
        assert!(t.get(&addr(1)).is_some());
        assert!(t.remove(&addr(1)).is_some());
        assert!(t.is_empty());
    }

    #[test]
    fn closest_ignores_connecting_edges() {
        let mut t = ConnectionTable::new();
        t.upsert(conn(
            0x10,
            ConnectionKind::Near,
            ConnectionState::Connecting,
        ));
        t.upsert(conn(
            0x80,
            ConnectionKind::Near,
            ConnectionState::Established,
        ));
        let target = addr(0x11);
        assert_eq!(t.closest_to(&target).unwrap().peer, addr(0x80));
        assert_eq!(t.count_kind(ConnectionKind::Near), 1);
    }

    #[test]
    fn closest_picks_minimum_ring_distance() {
        let mut t = ConnectionTable::new();
        for n in [0x10, 0x40, 0xA0, 0xF0] {
            t.upsert(conn(n, ConnectionKind::Far, ConnectionState::Established));
        }
        assert_eq!(t.closest_to(&addr(0x45)).unwrap().peer, addr(0x40));
        // Wrap-around: 0x02 is closer to 0xF0 than to 0x10? cw(0xF0->0x02)=0x12..,
        // ring distance to 0x10 is 0x0E — so 0x10 wins.
        assert_eq!(t.closest_to(&addr(0x02)).unwrap().peer, addr(0x10));
        assert_eq!(t.best_distance_to(&addr(0x40)), Distance::ZERO);
    }

    #[test]
    fn empty_table_has_max_distance() {
        let t = ConnectionTable::new();
        assert_eq!(t.best_distance_to(&addr(5)), Distance::MAX);
        assert!(t.closest_to(&addr(5)).is_none());
    }

    #[test]
    fn left_and_right_neighbors() {
        let mut t = ConnectionTable::new();
        for n in [0x10, 0x30, 0x70, 0xC0] {
            t.upsert(conn(n, ConnectionKind::Near, ConnectionState::Established));
        }
        let me = addr(0x50);
        let right: Vec<_> = t.right_neighbors(&me, 2).iter().map(|c| c.peer).collect();
        assert_eq!(right, vec![addr(0x70), addr(0xC0)]);
        let left: Vec<_> = t.left_neighbors(&me, 2).iter().map(|c| c.peer).collect();
        assert_eq!(left, vec![addr(0x30), addr(0x10)]);
        // Wrap-around: from 0x05 the nearest left neighbour is 0xC0.
        let left_wrap: Vec<_> = t
            .left_neighbors(&addr(0x05), 1)
            .iter()
            .map(|c| c.peer)
            .collect();
        assert_eq!(left_wrap, vec![addr(0xC0)]);
    }

    #[test]
    fn peers_lists_established_only() {
        let mut t = ConnectionTable::new();
        t.upsert(conn(1, ConnectionKind::Near, ConnectionState::Established));
        t.upsert(conn(2, ConnectionKind::Far, ConnectionState::Connecting));
        assert_eq!(t.peers(), vec![addr(1)]);
    }
}
