//! Overlay wire formats.
//!
//! Everything two Brunet nodes exchange over a physical transport is a
//! [`LinkMessage`]: either link-local control traffic (the connection/linking
//! handshake, keep-alive pings) or a [`RoutedPacket`] that is forwarded greedily
//! across the ring. Routed packets carry the IPOP tunnel payload (a serialized
//! virtual IPv4 packet — paper Fig. 3), the connection-setup messages that are
//! routed to their target before a direct edge exists, and the DHT operations used
//! by Brunet-ARP.
//!
//! The formats are byte-exact so the simulator accounts for realistic header
//! overhead on every physical link.

// This is a wire-decode module: decoders must return typed errors, never
// panic (PR 7 contract, machine-checked by ipop-lint rule D3).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::net::Ipv4Addr;

use ipop_packet::{Bytes, ParseError};

use crate::address::Address;
use crate::dht::SyncDigestEntry;

/// A physical transport endpoint (address, UDP/TCP port).
pub type Endpoint = (Ipv4Addr, u16);

/// How a routed packet is delivered at the end of the greedy route.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DeliveryMode {
    /// Deliver only to the node whose address equals the destination exactly
    /// (used for IP tunnelling, where the destination is known to exist).
    Exact,
    /// Deliver to the node closest to the destination (used for DHT operations and
    /// connection requests addressed to an arbitrary point on the ring).
    Closest,
}

/// The kind of structured connection being requested.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ConnectionKind {
    /// Ring neighbour (structured near) connection.
    Near,
    /// Kleinberg shortcut (structured far) connection.
    Far,
    /// Bootstrap/leaf connection used while joining.
    Leaf,
}

/// Payload of a routed overlay packet.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutedPayload {
    /// A tunnelled virtual IPv4 packet (serialized bytes, shared — cloning a
    /// routed packet does not copy the tunnelled payload).
    IpTunnel(Bytes),
    /// Request to establish a direct connection with the initiator.
    ConnectRequest {
        /// Correlates request and response.
        token: u64,
        /// The initiator's overlay address.
        initiator: Address,
        /// Kind of connection requested.
        kind: ConnectionKind,
        /// Physical endpoints (local and NAT-observed) the initiator can be reached at.
        endpoints: Vec<Endpoint>,
    },
    /// Response to a [`RoutedPayload::ConnectRequest`], routed back to the initiator.
    ConnectResponse {
        /// Token from the request.
        token: u64,
        /// The responder's overlay address.
        responder: Address,
        /// The responder's reachable physical endpoints.
        endpoints: Vec<Endpoint>,
    },
    /// Store a value at the node closest to `key` (overwrite semantics). The
    /// value is a shared buffer, so storing and replicating never copy it.
    DhtPut {
        /// DHT key.
        key: Address,
        /// Value bytes (shared).
        value: Bytes,
        /// Soft-state lifetime of the record, in milliseconds.
        ttl_ms: u64,
        /// Publisher's version of this value (bumped when the published value
        /// changes, e.g. a Brunet-ARP mapping moving to a new host). The key's
        /// owner assigns the stored record a version at least this high and
        /// strictly above any conflicting record it replaces.
        version: u64,
    },
    /// Look up `key`; the responsible node answers with a `DhtReply`.
    DhtGet {
        /// DHT key.
        key: Address,
        /// Correlates request and reply.
        token: u64,
    },
    /// Answer to a [`RoutedPayload::DhtGet`].
    DhtReply {
        /// Token from the request.
        token: u64,
        /// The stored value, if any (shared).
        value: Option<Bytes>,
    },
    /// Atomic create-if-absent: store the value under `key` only if no live
    /// record exists there. The owner answers with a `DhtCreateReply` either
    /// way. This is the claim primitive of the DHCP-style address allocator.
    DhtCreate {
        /// DHT key.
        key: Address,
        /// Value bytes (shared).
        value: Bytes,
        /// Soft-state lifetime of the record, in milliseconds.
        ttl_ms: u64,
        /// Correlates request and reply.
        token: u64,
    },
    /// Answer to a [`RoutedPayload::DhtCreate`].
    DhtCreateReply {
        /// Token from the request.
        token: u64,
        /// True when the record was created; false when a live record already
        /// existed under the key.
        created: bool,
        /// The pre-existing value on conflict (`created == false`).
        existing: Option<Bytes>,
    },
    /// A record copy pushed by the key's ring owner to a neighbouring node
    /// (replication, read repair and graceful-leave handoff traffic). The
    /// receiver keeps its own copy instead when that copy is fresher by
    /// `(version, expiry)`.
    DhtReplicate {
        /// DHT key.
        key: Address,
        /// Value bytes (shared).
        value: Bytes,
        /// Remaining lifetime of the record, in milliseconds.
        ttl_ms: u64,
        /// Version of the record at the sender.
        version: u64,
        /// Non-zero when the sender is coordinating a quorum write and wants a
        /// [`RoutedPayload::DhtReplicateAck`] carrying this token; zero for
        /// fire-and-forget replication (re-replication, handoff, repair).
        token: u64,
    },
    /// A replica answers a [`RoutedPayload::DhtReplicate`] with a non-zero
    /// token.
    DhtReplicateAck {
        /// Token echoed from the replicate.
        token: u64,
        /// True when the replica now holds a live record with the pushed
        /// value (stored it, or already had it). False when it kept a fresher
        /// *conflicting* record — such an ack must not count toward a write
        /// quorum, or a claim could be confirmed while the majority holds the
        /// other claimant's record.
        stored: bool,
    },
    /// A quorum-read coordinator polling one member of a key's replica set for
    /// its local copy (never routed further than the addressed node).
    DhtGetReplica {
        /// DHT key.
        key: Address,
        /// Correlates the poll with its [`RoutedPayload::DhtReplicaValue`].
        token: u64,
    },
    /// A replica's answer to a [`RoutedPayload::DhtGetReplica`].
    DhtReplicaValue {
        /// Token echoed from the poll.
        token: u64,
        /// The replica's live copy: `(value, version, remaining ttl in ms)`,
        /// or `None` when it holds no live record under the key.
        copy: Option<(Bytes, u64, u64)>,
    },
    /// Delete the record under `key` (lease release). The owner drops its copy
    /// and forwards the removal to the replicas it pushed.
    DhtRemove {
        /// DHT key.
        key: Address,
    },
    /// Conditional removal: drop the record under `key` only if its stored
    /// value *and version* equal the withdrawn claim's. Sent by a
    /// quorum-write coordinator withdrawing a failed claim from replicas that
    /// may have stored it (their acks were lost) — unconditional removal
    /// could delete a conflicting fresher record a replica legitimately
    /// kept, and a value-only match could delete the same claimant's
    /// *re-claimed* (newer, committed) record if the withdraw was delayed.
    DhtWithdraw {
        /// DHT key.
        key: Address,
        /// The withdrawn claim's value (shared).
        value: Bytes,
        /// The withdrawn claim's version.
        version: u64,
    },
    /// Anti-entropy digest: a compact summary of records the sender holds
    /// (or publishes), sent periodically so replica sets converge even when
    /// no read ever touches a key. The receiver compares each entry with its
    /// own store and answers with a [`RoutedPayload::DhtSyncPull`] for
    /// records the sender has fresher — and, for owner-to-replica sweeps,
    /// pushes back records *it* has fresher via plain replicates.
    DhtSyncDigest {
        /// Compact per-record summaries (see [`crate::dht::SyncDigestEntry`]).
        entries: Vec<SyncDigestEntry>,
        /// True for the owner→replica sweep (the receiver may push back
        /// fresher copies); false for the publisher→owner sweep, where the
        /// receiver only pulls — a conflicting owner record is the renewal
        /// path's business, and the publisher is not a replica to push to.
        from_owner: bool,
    },
    /// Answer to a [`RoutedPayload::DhtSyncDigest`]: the listed records are
    /// missing or stale at the receiver — re-send them. The digest sender
    /// responds with replicates (stored records) or refresh puts/renewals
    /// (its own publications).
    DhtSyncPull {
        /// Keys whose records should be re-sent.
        keys: Vec<Address>,
    },
    /// Join (or renew membership in) a topic's subscriber set. Routed
    /// `Closest` to the topic key — `SHA-1("topic:" + name)` — so whichever
    /// node currently owns that point of the ring (the topic *root*) merges
    /// the subscriber into the topic's DHT record. Subscriptions are soft
    /// state: the subscriber re-sends this at half the TTL, and an entry
    /// that stops being renewed ages out of the record.
    PubSubSubscribe {
        /// The topic's DHT key.
        topic: Address,
        /// The subscriber's overlay address.
        subscriber: Address,
        /// Soft-state lifetime of this subscription, in milliseconds.
        ttl_ms: u64,
    },
    /// Leave a topic's subscriber set (graceful unsubscribe; a crashed
    /// subscriber is instead pruned by TTL expiry or a dead-edge verdict).
    PubSubUnsubscribe {
        /// The topic's DHT key.
        topic: Address,
        /// The subscriber's overlay address.
        subscriber: Address,
    },
    /// A published message, routed `Closest` to the topic key. The topic
    /// root reads the subscriber set from its DHT record and fans the
    /// message out along a bounded-degree relay tree of
    /// [`RoutedPayload::PubSubDeliver`] packets.
    PubSubPublish {
        /// The topic's DHT key.
        topic: Address,
        /// Publisher-drawn message id (latency bookkeeping for workloads).
        msg_id: u64,
        /// Message body (shared — fan-out clones never copy it).
        payload: Bytes,
    },
    /// One edge of the relay-tree fan-out, routed `Exact` to a subscriber.
    /// Besides delivering locally, the receiver is delegated `relay_to`: it
    /// re-partitions that list into at most `pubsub_fanout` chunks and sends
    /// each chunk onward — the tree's degree stays bounded while the whole
    /// subscriber set is covered. The body is encoded *last* so a forwarding
    /// hop can reuse the cached wire image (patching only hops/TTL) and the
    /// body bytes are sliced, never copied, on decode.
    PubSubDeliver {
        /// The topic's DHT key.
        topic: Address,
        /// Message id echoed from the publish.
        msg_id: u64,
        /// Subscribers this receiver must forward the message to.
        relay_to: Vec<Address>,
        /// Message body (shared).
        payload: Bytes,
    },
    /// A retryable refusal of a [`RoutedPayload::PubSubPublish`]: the node
    /// that received the publish is (transiently) closest to the topic key
    /// but holds no live subscriber-set record — typically the re-home window
    /// after a topic-root crash, before the record migrates. The publisher
    /// re-originates the same message (same id) after a short backoff instead
    /// of losing it.
    PubSubNack {
        /// The topic's DHT key, echoed from the publish.
        topic: Address,
        /// Message id echoed from the publish.
        msg_id: u64,
    },
    /// Open a virtual stream to the destination node: the active side of the
    /// SYN / SYN-ACK handshake. Routed `Exact` — streams connect overlay
    /// *nodes*, not ring regions.
    StreamSyn {
        /// Initiator-drawn stream id, unique per (initiator, remote) pair.
        stream_id: u64,
        /// The initiator's initial receive window, in bytes.
        window: u32,
    },
    /// Accept a [`RoutedPayload::StreamSyn`], completing the handshake.
    StreamSynAck {
        /// Stream id echoed from the SYN.
        stream_id: u64,
        /// The acceptor's initial receive window, in bytes.
        window: u32,
    },
    /// One ordered segment of stream payload. The body is encoded *last* (as
    /// in [`RoutedPayload::PubSubDeliver`]) so forwarding hops patch the
    /// cached wire image instead of re-encoding, and receivers slice the body
    /// out of the shared buffer.
    StreamData {
        /// Stream id (scoped to the sending node).
        stream_id: u64,
        /// Byte offset of the first payload byte in the stream.
        seq: u64,
        /// The sender's current receive window (piggybacked flow control).
        window: u32,
        /// Segment payload (shared).
        payload: Bytes,
    },
    /// Cumulative acknowledgement of stream data: everything below `ack` has
    /// been received in order. Also the window-update vehicle — the receiver
    /// re-opens its window here as the application drains.
    StreamAck {
        /// Stream id echoed from the data.
        stream_id: u64,
        /// Next byte offset expected (everything below it is acknowledged).
        ack: u64,
        /// The acker's current receive window, in bytes.
        window: u32,
    },
    /// Close one direction of a stream. The FIN occupies one sequence number
    /// (`seq`), so it is acknowledged — and retransmitted — like data.
    StreamFin {
        /// Stream id.
        stream_id: u64,
        /// Sequence number of the FIN (one past the last payload byte).
        seq: u64,
    },
}

/// A packet routed hop-by-hop across the overlay ring.
#[derive(Clone, Debug)]
pub struct RoutedPacket {
    /// Originating node.
    pub src: Address,
    /// Destination point on the ring.
    pub dst: Address,
    /// Delivery rule at the end of the route.
    pub mode: DeliveryMode,
    /// Hops taken so far.
    pub hops: u8,
    /// Maximum hops before the packet is dropped.
    pub ttl: u8,
    /// Payload.
    pub payload: RoutedPayload,
    /// Wire image this packet was decoded from, when it carries an IP tunnel,
    /// a pub/sub delivery or a stream segment (the payloads forwarded
    /// verbatim in bulk).
    /// Forwarding nodes re-encode by patching the hop/TTL bytes of this image
    /// instead of re-serializing the whole tunnelled payload; validity is
    /// checked structurally in [`LinkMessage::to_wire`], so mutating header
    /// fields (the forwarding path bumps `hops`) stays safe.
    wire: Option<Bytes>,
}

impl PartialEq for RoutedPacket {
    fn eq(&self, other: &Self) -> bool {
        // The cached wire image is a transport detail, not identity.
        self.src == other.src
            && self.dst == other.dst
            && self.mode == other.mode
            && self.hops == other.hops
            && self.ttl == other.ttl
            && self.payload == other.payload
    }
}

impl RoutedPacket {
    /// A routed packet with the default TTL of 32 hops.
    pub fn new(src: Address, dst: Address, mode: DeliveryMode, payload: RoutedPayload) -> Self {
        RoutedPacket {
            src,
            dst,
            mode,
            hops: 0,
            ttl: 32,
            payload,
            wire: None,
        }
    }
}

/// A message exchanged directly between two physical endpoints.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkMessage {
    /// Link handshake: "I am `from`, I want a `kind` edge, and I observe your
    /// traffic as coming from `observed`".
    Hello {
        /// Sender's overlay address.
        from: Address,
        /// Connection kind being established.
        kind: ConnectionKind,
        /// The sender's view of the receiver's endpoint — this is how a node behind
        /// a NAT learns its translated address (paper Section III-D).
        observed: Endpoint,
        /// Handshake token.
        token: u64,
    },
    /// Handshake acknowledgement (same fields, confirming the edge).
    HelloAck {
        /// Sender's overlay address.
        from: Address,
        /// Connection kind confirmed.
        kind: ConnectionKind,
        /// The acker's view of the receiver's endpoint.
        observed: Endpoint,
        /// Token echoed from the Hello.
        token: u64,
    },
    /// Connection keep-alive probe.
    Ping {
        /// Sender's overlay address.
        from: Address,
        /// Probe nonce.
        nonce: u64,
    },
    /// Keep-alive answer.
    Pong {
        /// Sender's overlay address.
        from: Address,
        /// Nonce echoed from the ping.
        nonce: u64,
    },
    /// Graceful teardown of the edge.
    Close {
        /// Sender's overlay address.
        from: Address,
    },
    /// Link-monitor liveness probe: unlike the idle keep-alive
    /// [`LinkMessage::Ping`], a probe demands a [`LinkMessage::ProbeAck`]
    /// within an RTT-adaptive deadline — a few consecutive misses declare the
    /// edge dead in seconds instead of waiting out the connection timeout.
    Probe {
        /// Sender's overlay address.
        from: Address,
        /// Probe nonce (matches the ack to the RTT sample).
        nonce: u64,
    },
    /// Answer to a [`LinkMessage::Probe`]; the echoed nonce dates the probe
    /// so the sender can take an RTT sample.
    ProbeAck {
        /// Sender's overlay address.
        from: Address,
        /// Nonce echoed from the probe.
        nonce: u64,
    },
    /// A routed overlay packet being forwarded along this edge.
    Routed(RoutedPacket),
    /// Periodic neighbour-set gossip: the sender's view of (a sample of) its own
    /// established edges. Receivers use the entries as link candidates, which is
    /// what lets the structured-near sets converge to the true ring neighbours
    /// (Brunet's connection-table exchange, Section II-C).
    Neighbors {
        /// Sender's overlay address.
        from: Address,
        /// Sampled established peers of the sender: `(address, endpoint)`.
        neighbors: Vec<(Address, Endpoint)>,
    },
}

/// Offset of the `hops` byte inside an encoded `LinkMessage::Routed` (tag 1 +
/// src 20 + dst 20 + mode 1).
const ROUTED_HOPS_OFFSET: usize = 42;
/// Offset of the `ttl` byte (directly after `hops`).
const ROUTED_TTL_OFFSET: usize = 43;
/// Offset of the tunnelled payload bytes (header + payload tag 1 + length 4).
const ROUTED_TUNNEL_OFFSET: usize = 49;
/// Fixed bytes of an encoded `PubSubDeliver` besides the relay list and body:
/// routed header 44 + payload tag 1 + topic 20 + msg_id 8 + relay count 2 +
/// body length 4. The body starts at `PUBSUB_DELIVER_FIXED + 20 × relays`.
const PUBSUB_DELIVER_FIXED: usize = 79;
/// Fixed bytes of an encoded `StreamData` besides the body: routed header 44 +
/// payload tag 1 + stream_id 8 + seq 8 + window 4 + body length 4. The body
/// starts at `STREAM_DATA_FIXED`.
const STREAM_DATA_FIXED: usize = 69;

// --------------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn addr(&mut self, a: &Address) {
        self.buf.extend_from_slice(&a.0);
    }
    fn endpoint(&mut self, e: &Endpoint) {
        self.buf.extend_from_slice(&e.0.octets());
        self.u16(e.1);
    }
    fn bytes32(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    /// When decoding from a shared buffer, the buffer itself — so payload
    /// fields can be sliced out of it instead of copied.
    src: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader {
            data,
            pos: 0,
            src: None,
        }
    }

    fn shared(data: &'a Bytes) -> Self {
        Reader {
            data,
            pos: 0,
            src: Some(data),
        }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        // `get` makes the bounds check and the slice one total operation: no
        // index expression below can panic, whatever the wire claims.
        let s = self
            .data
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(ParseError::Truncated("overlay message"))?;
        self.pos += n;
        Ok(s)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], ParseError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ParseError::Truncated("overlay message"))
    }
    fn u8(&mut self) -> Result<u8, ParseError> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }
    fn u16(&mut self) -> Result<u16, ParseError> {
        Ok(u16::from_be_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, ParseError> {
        Ok(u32::from_be_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, ParseError> {
        Ok(u64::from_be_bytes(self.array()?))
    }
    fn addr(&mut self) -> Result<Address, ParseError> {
        Ok(Address(self.array()?))
    }
    fn endpoint(&mut self) -> Result<Endpoint, ParseError> {
        let ip = Ipv4Addr::from(self.array::<4>()?);
        let port = self.u16()?;
        Ok((ip, port))
    }
    /// A 32-bit-length-prefixed byte field, shared with the source buffer when
    /// decoding from one (zero copy) and copied otherwise.
    fn bytes32(&mut self) -> Result<Bytes, ParseError> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let slice = self.take(len)?;
        Ok(match self.src {
            Some(src) => src.slice(start..start + len),
            None => Bytes::from(slice),
        })
    }
    /// Bytes left to read.
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    /// Validate an element count read off the wire against the bytes actually
    /// present (`per_elem` is each element's minimum encoded size). A mutated
    /// count field otherwise turns into a huge `Vec::with_capacity` before the
    /// element reads fail — this rejects it up front, allocation-free.
    fn counted(&self, count: usize, per_elem: usize) -> Result<usize, ParseError> {
        if count * per_elem > self.remaining() {
            return Err(ParseError::BadLength("overlay element count"));
        }
        Ok(count)
    }
}

fn write_endpoints(w: &mut Writer, eps: &[Endpoint]) {
    w.u8(eps.len() as u8);
    for e in eps {
        w.endpoint(e);
    }
}

fn read_endpoints(r: &mut Reader<'_>) -> Result<Vec<Endpoint>, ParseError> {
    let raw = r.u8()? as usize;
    let n = r.counted(raw, 6)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.endpoint()?);
    }
    Ok(out)
}

impl ConnectionKind {
    fn code(self) -> u8 {
        match self {
            ConnectionKind::Near => 0,
            ConnectionKind::Far => 1,
            ConnectionKind::Leaf => 2,
        }
    }
    fn from_code(c: u8) -> Result<Self, ParseError> {
        match c {
            0 => Ok(ConnectionKind::Near),
            1 => Ok(ConnectionKind::Far),
            2 => Ok(ConnectionKind::Leaf),
            _ => Err(ParseError::Unsupported("connection kind")),
        }
    }
}

impl RoutedPacket {
    /// The cached wire image with `hops`/`ttl` patched in, if the cache is
    /// still structurally valid for this packet (same src/dst/mode, the same
    /// payload fields, and a body that is the exact buffer region the image
    /// was decoded from). Covers the two payloads that get forwarded or
    /// fanned out verbatim: `IpTunnel` and `PubSubDeliver`.
    fn patched_wire(&self) -> Option<Bytes> {
        let wire = self.wire.as_ref()?;
        if wire.len() < ROUTED_TUNNEL_OFFSET
            || wire[0] != 5
            || wire[1..21] != self.src.0
            || wire[21..41] != self.dst.0
            || wire[41]
                != match self.mode {
                    DeliveryMode::Exact => 0,
                    DeliveryMode::Closest => 1,
                }
        {
            return None;
        }
        let body_matches = match &self.payload {
            RoutedPayload::IpTunnel(payload) => {
                wire.len() == ROUTED_TUNNEL_OFFSET + payload.len()
                    && wire[44] == 0
                    && payload.same_region(&wire.slice(ROUTED_TUNNEL_OFFSET..))
            }
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id,
                relay_to,
                payload,
            } => {
                let body_at = PUBSUB_DELIVER_FIXED + 20 * relay_to.len();
                wire.len() == body_at + payload.len()
                    && wire[44] == 19
                    && wire[45..65] == topic.0
                    && wire[65..73] == msg_id.to_be_bytes()
                    && wire[73..75] == (relay_to.len() as u16).to_be_bytes()
                    && relay_to
                        .iter()
                        .enumerate()
                        .all(|(i, addr)| wire[75 + 20 * i..95 + 20 * i] == addr.0)
                    && payload.same_region(&wire.slice(body_at..))
            }
            RoutedPayload::StreamData {
                stream_id,
                seq,
                window,
                payload,
            } => {
                wire.len() == STREAM_DATA_FIXED + payload.len()
                    && wire[44] == 23
                    && wire[45..53] == stream_id.to_be_bytes()
                    && wire[53..61] == seq.to_be_bytes()
                    && wire[61..65] == window.to_be_bytes()
                    && payload.same_region(&wire.slice(STREAM_DATA_FIXED..))
            }
            _ => return None,
        };
        if !body_matches {
            return None;
        }
        if wire[ROUTED_HOPS_OFFSET] == self.hops && wire[ROUTED_TTL_OFFSET] == self.ttl {
            // Nothing mutated: reuse the image as-is, zero copy.
            return Some(wire.clone());
        }
        let mut out = wire.to_vec();
        out[ROUTED_HOPS_OFFSET] = self.hops;
        out[ROUTED_TTL_OFFSET] = self.ttl;
        Some(Bytes::from(out))
    }

    fn write(&self, w: &mut Writer) {
        w.addr(&self.src);
        w.addr(&self.dst);
        w.u8(match self.mode {
            DeliveryMode::Exact => 0,
            DeliveryMode::Closest => 1,
        });
        w.u8(self.hops);
        w.u8(self.ttl);
        match &self.payload {
            RoutedPayload::IpTunnel(data) => {
                w.u8(0);
                w.bytes32(data);
            }
            RoutedPayload::ConnectRequest {
                token,
                initiator,
                kind,
                endpoints,
            } => {
                w.u8(1);
                w.u64(*token);
                w.addr(initiator);
                w.u8(kind.code());
                write_endpoints(w, endpoints);
            }
            RoutedPayload::ConnectResponse {
                token,
                responder,
                endpoints,
            } => {
                w.u8(2);
                w.u64(*token);
                w.addr(responder);
                write_endpoints(w, endpoints);
            }
            RoutedPayload::DhtPut {
                key,
                value,
                ttl_ms,
                version,
            } => {
                w.u8(3);
                w.addr(key);
                w.u64(*ttl_ms);
                w.u64(*version);
                w.bytes32(value);
            }
            RoutedPayload::DhtGet { key, token } => {
                w.u8(4);
                w.addr(key);
                w.u64(*token);
            }
            RoutedPayload::DhtReply { token, value } => {
                w.u8(5);
                w.u64(*token);
                match value {
                    Some(v) => {
                        w.u8(1);
                        w.bytes32(v);
                    }
                    None => w.u8(0),
                }
            }
            RoutedPayload::DhtCreate {
                key,
                value,
                ttl_ms,
                token,
            } => {
                w.u8(6);
                w.addr(key);
                w.u64(*ttl_ms);
                w.u64(*token);
                w.bytes32(value);
            }
            RoutedPayload::DhtCreateReply {
                token,
                created,
                existing,
            } => {
                w.u8(7);
                w.u64(*token);
                w.u8(u8::from(*created));
                match existing {
                    Some(v) => {
                        w.u8(1);
                        w.bytes32(v);
                    }
                    None => w.u8(0),
                }
            }
            RoutedPayload::DhtReplicate {
                key,
                value,
                ttl_ms,
                version,
                token,
            } => {
                w.u8(8);
                w.addr(key);
                w.u64(*ttl_ms);
                w.u64(*version);
                w.u64(*token);
                w.bytes32(value);
            }
            RoutedPayload::DhtRemove { key } => {
                w.u8(9);
                w.addr(key);
            }
            RoutedPayload::DhtReplicateAck { token, stored } => {
                w.u8(10);
                w.u64(*token);
                w.u8(u8::from(*stored));
            }
            RoutedPayload::DhtGetReplica { key, token } => {
                w.u8(11);
                w.addr(key);
                w.u64(*token);
            }
            RoutedPayload::DhtReplicaValue { token, copy } => {
                w.u8(12);
                w.u64(*token);
                match copy {
                    Some((value, version, ttl_ms)) => {
                        w.u8(1);
                        w.u64(*version);
                        w.u64(*ttl_ms);
                        w.bytes32(value);
                    }
                    None => w.u8(0),
                }
            }
            RoutedPayload::DhtWithdraw {
                key,
                value,
                version,
            } => {
                w.u8(13);
                w.addr(key);
                w.u64(*version);
                w.bytes32(value);
            }
            RoutedPayload::DhtSyncDigest {
                entries,
                from_owner,
            } => {
                w.u8(14);
                w.u8(u8::from(*from_owner));
                w.u16(entries.len().min(u16::MAX as usize) as u16);
                for e in entries.iter().take(u16::MAX as usize) {
                    w.addr(&e.key);
                    w.u64(e.version);
                    w.u64(e.value_hash);
                    w.u64(e.ttl_bucket);
                }
            }
            RoutedPayload::DhtSyncPull { keys } => {
                w.u8(15);
                w.u16(keys.len().min(u16::MAX as usize) as u16);
                for k in keys.iter().take(u16::MAX as usize) {
                    w.addr(k);
                }
            }
            RoutedPayload::PubSubSubscribe {
                topic,
                subscriber,
                ttl_ms,
            } => {
                w.u8(16);
                w.addr(topic);
                w.addr(subscriber);
                w.u64(*ttl_ms);
            }
            RoutedPayload::PubSubUnsubscribe { topic, subscriber } => {
                w.u8(17);
                w.addr(topic);
                w.addr(subscriber);
            }
            RoutedPayload::PubSubPublish {
                topic,
                msg_id,
                payload,
            } => {
                w.u8(18);
                w.addr(topic);
                w.u64(*msg_id);
                w.bytes32(payload);
            }
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id,
                relay_to,
                payload,
            } => {
                // Body last, so a forwarding hop's patch path and the fan-out
                // decode can share the buffer region (see PUBSUB_DELIVER_FIXED).
                w.u8(19);
                w.addr(topic);
                w.u64(*msg_id);
                w.u16(relay_to.len().min(u16::MAX as usize) as u16);
                for addr in relay_to.iter().take(u16::MAX as usize) {
                    w.addr(addr);
                }
                w.bytes32(payload);
            }
            RoutedPayload::PubSubNack { topic, msg_id } => {
                w.u8(20);
                w.addr(topic);
                w.u64(*msg_id);
            }
            RoutedPayload::StreamSyn { stream_id, window } => {
                w.u8(21);
                w.u64(*stream_id);
                w.u32(*window);
            }
            RoutedPayload::StreamSynAck { stream_id, window } => {
                w.u8(22);
                w.u64(*stream_id);
                w.u32(*window);
            }
            RoutedPayload::StreamData {
                stream_id,
                seq,
                window,
                payload,
            } => {
                // Body last, so a forwarding hop's patch path and the receive
                // decode can share the buffer region (see STREAM_DATA_FIXED).
                w.u8(23);
                w.u64(*stream_id);
                w.u64(*seq);
                w.u32(*window);
                w.bytes32(payload);
            }
            RoutedPayload::StreamAck {
                stream_id,
                ack,
                window,
            } => {
                w.u8(24);
                w.u64(*stream_id);
                w.u64(*ack);
                w.u32(*window);
            }
            RoutedPayload::StreamFin { stream_id, seq } => {
                w.u8(25);
                w.u64(*stream_id);
                w.u64(*seq);
            }
        }
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, ParseError> {
        let src = r.addr()?;
        let dst = r.addr()?;
        let mode = match r.u8()? {
            0 => DeliveryMode::Exact,
            1 => DeliveryMode::Closest,
            _ => return Err(ParseError::Unsupported("delivery mode")),
        };
        let hops = r.u8()?;
        let ttl = r.u8()?;
        let payload = match r.u8()? {
            0 => RoutedPayload::IpTunnel(r.bytes32()?),
            1 => RoutedPayload::ConnectRequest {
                token: r.u64()?,
                initiator: r.addr()?,
                kind: ConnectionKind::from_code(r.u8()?)?,
                endpoints: read_endpoints(r)?,
            },
            2 => RoutedPayload::ConnectResponse {
                token: r.u64()?,
                responder: r.addr()?,
                endpoints: read_endpoints(r)?,
            },
            3 => RoutedPayload::DhtPut {
                key: r.addr()?,
                ttl_ms: r.u64()?,
                version: r.u64()?,
                value: r.bytes32()?,
            },
            4 => RoutedPayload::DhtGet {
                key: r.addr()?,
                token: r.u64()?,
            },
            5 => {
                let token = r.u64()?;
                let value = if r.u8()? == 1 {
                    Some(r.bytes32()?)
                } else {
                    None
                };
                RoutedPayload::DhtReply { token, value }
            }
            6 => RoutedPayload::DhtCreate {
                key: r.addr()?,
                ttl_ms: r.u64()?,
                token: r.u64()?,
                value: r.bytes32()?,
            },
            7 => {
                let token = r.u64()?;
                let created = r.u8()? == 1;
                let existing = if r.u8()? == 1 {
                    Some(r.bytes32()?)
                } else {
                    None
                };
                RoutedPayload::DhtCreateReply {
                    token,
                    created,
                    existing,
                }
            }
            8 => RoutedPayload::DhtReplicate {
                key: r.addr()?,
                ttl_ms: r.u64()?,
                version: r.u64()?,
                token: r.u64()?,
                value: r.bytes32()?,
            },
            9 => RoutedPayload::DhtRemove { key: r.addr()? },
            10 => RoutedPayload::DhtReplicateAck {
                token: r.u64()?,
                stored: r.u8()? == 1,
            },
            11 => RoutedPayload::DhtGetReplica {
                key: r.addr()?,
                token: r.u64()?,
            },
            12 => {
                let token = r.u64()?;
                let copy = if r.u8()? == 1 {
                    let version = r.u64()?;
                    let ttl_ms = r.u64()?;
                    Some((r.bytes32()?, version, ttl_ms))
                } else {
                    None
                };
                RoutedPayload::DhtReplicaValue { token, copy }
            }
            13 => RoutedPayload::DhtWithdraw {
                key: r.addr()?,
                version: r.u64()?,
                value: r.bytes32()?,
            },
            14 => {
                let from_owner = r.u8()? == 1;
                let raw = r.u16()? as usize;
                let count = r.counted(raw, 44)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(SyncDigestEntry {
                        key: r.addr()?,
                        version: r.u64()?,
                        value_hash: r.u64()?,
                        ttl_bucket: r.u64()?,
                    });
                }
                RoutedPayload::DhtSyncDigest {
                    entries,
                    from_owner,
                }
            }
            15 => {
                let raw = r.u16()? as usize;
                let count = r.counted(raw, 20)?;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(r.addr()?);
                }
                RoutedPayload::DhtSyncPull { keys }
            }
            16 => RoutedPayload::PubSubSubscribe {
                topic: r.addr()?,
                subscriber: r.addr()?,
                ttl_ms: r.u64()?,
            },
            17 => RoutedPayload::PubSubUnsubscribe {
                topic: r.addr()?,
                subscriber: r.addr()?,
            },
            18 => RoutedPayload::PubSubPublish {
                topic: r.addr()?,
                msg_id: r.u64()?,
                payload: r.bytes32()?,
            },
            19 => {
                let topic = r.addr()?;
                let msg_id = r.u64()?;
                let raw = r.u16()? as usize;
                let count = r.counted(raw, 20)?;
                let mut relay_to = Vec::with_capacity(count);
                for _ in 0..count {
                    relay_to.push(r.addr()?);
                }
                RoutedPayload::PubSubDeliver {
                    topic,
                    msg_id,
                    relay_to,
                    payload: r.bytes32()?,
                }
            }
            20 => RoutedPayload::PubSubNack {
                topic: r.addr()?,
                msg_id: r.u64()?,
            },
            21 => RoutedPayload::StreamSyn {
                stream_id: r.u64()?,
                window: r.u32()?,
            },
            22 => RoutedPayload::StreamSynAck {
                stream_id: r.u64()?,
                window: r.u32()?,
            },
            23 => RoutedPayload::StreamData {
                stream_id: r.u64()?,
                seq: r.u64()?,
                window: r.u32()?,
                payload: r.bytes32()?,
            },
            24 => RoutedPayload::StreamAck {
                stream_id: r.u64()?,
                ack: r.u64()?,
                window: r.u32()?,
            },
            25 => RoutedPayload::StreamFin {
                stream_id: r.u64()?,
                seq: r.u64()?,
            },
            _ => return Err(ParseError::Unsupported("routed payload")),
        };
        Ok(RoutedPacket {
            src,
            dst,
            mode,
            hops,
            ttl,
            payload,
            wire: None,
        })
    }
}

impl LinkMessage {
    /// Serialize to a shared wire buffer.
    ///
    /// For a routed IP-tunnel packet that was itself decoded from the wire,
    /// the cached image is reused: only the mutated `hops`/`ttl` header bytes
    /// are patched, and the tunnelled payload is **not** re-encoded. This is
    /// the forwarding fast path — intermediate hops pay one buffer copy
    /// instead of a field-by-field re-serialization.
    pub fn to_wire(&self) -> Bytes {
        if let LinkMessage::Routed(pkt) = self {
            if let Some(patched) = pkt.patched_wire() {
                return patched;
            }
        }
        Bytes::from(self.to_bytes())
    }

    /// Serialize to wire bytes (full encode, no cache).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            LinkMessage::Hello {
                from,
                kind,
                observed,
                token,
            } => {
                w.u8(0);
                w.addr(from);
                w.u8(kind.code());
                w.endpoint(observed);
                w.u64(*token);
            }
            LinkMessage::HelloAck {
                from,
                kind,
                observed,
                token,
            } => {
                w.u8(1);
                w.addr(from);
                w.u8(kind.code());
                w.endpoint(observed);
                w.u64(*token);
            }
            LinkMessage::Ping { from, nonce } => {
                w.u8(2);
                w.addr(from);
                w.u64(*nonce);
            }
            LinkMessage::Pong { from, nonce } => {
                w.u8(3);
                w.addr(from);
                w.u64(*nonce);
            }
            LinkMessage::Close { from } => {
                w.u8(4);
                w.addr(from);
            }
            LinkMessage::Probe { from, nonce } => {
                w.u8(7);
                w.addr(from);
                w.u64(*nonce);
            }
            LinkMessage::ProbeAck { from, nonce } => {
                w.u8(8);
                w.addr(from);
                w.u64(*nonce);
            }
            LinkMessage::Routed(pkt) => {
                w.u8(5);
                pkt.write(&mut w);
            }
            LinkMessage::Neighbors { from, neighbors } => {
                w.u8(6);
                w.addr(from);
                w.u8(neighbors.len().min(255) as u8);
                for (addr, ep) in neighbors.iter().take(255) {
                    w.addr(addr);
                    w.endpoint(ep);
                }
            }
        }
        w.buf
    }

    /// Parse from a shared wire buffer. Tunnelled and pub/sub bodies are
    /// sliced out of `data` (zero copy), and routed IP-tunnel / pub/sub
    /// delivery packets remember the wire image so forwarding can patch
    /// instead of re-encode.
    pub fn from_wire(data: &Bytes) -> Result<Self, ParseError> {
        let mut r = Reader::shared(data);
        let mut msg = Self::read(&mut r)?;
        if r.remaining() != 0 {
            return Err(ParseError::BadLength("overlay trailing bytes"));
        }
        if let LinkMessage::Routed(pkt) = &mut msg {
            if matches!(
                pkt.payload,
                RoutedPayload::IpTunnel(_)
                    | RoutedPayload::PubSubDeliver { .. }
                    | RoutedPayload::StreamData { .. }
            ) {
                pkt.wire = Some(data.clone());
            }
        }
        Ok(msg)
    }

    /// Parse from wire bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ParseError> {
        let mut r = Reader::new(data);
        let msg = Self::read(&mut r)?;
        if r.remaining() != 0 {
            // A message followed by garbage is not a valid wire image; strict
            // rejection keeps a mutated length field from silently shortening
            // the decoded payload.
            return Err(ParseError::BadLength("overlay trailing bytes"));
        }
        Ok(msg)
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, ParseError> {
        let msg = match r.u8()? {
            0 => LinkMessage::Hello {
                from: r.addr()?,
                kind: ConnectionKind::from_code(r.u8()?)?,
                observed: r.endpoint()?,
                token: r.u64()?,
            },
            1 => LinkMessage::HelloAck {
                from: r.addr()?,
                kind: ConnectionKind::from_code(r.u8()?)?,
                observed: r.endpoint()?,
                token: r.u64()?,
            },
            2 => LinkMessage::Ping {
                from: r.addr()?,
                nonce: r.u64()?,
            },
            3 => LinkMessage::Pong {
                from: r.addr()?,
                nonce: r.u64()?,
            },
            4 => LinkMessage::Close { from: r.addr()? },
            5 => LinkMessage::Routed(RoutedPacket::read(r)?),
            6 => {
                let from = r.addr()?;
                let raw = r.u8()? as usize;
                let count = r.counted(raw, 26)?;
                let mut neighbors = Vec::with_capacity(count);
                for _ in 0..count {
                    neighbors.push((r.addr()?, r.endpoint()?));
                }
                LinkMessage::Neighbors { from, neighbors }
            }
            7 => LinkMessage::Probe {
                from: r.addr()?,
                nonce: r.u64()?,
            },
            8 => LinkMessage::ProbeAck {
                from: r.addr()?,
                nonce: r.u64()?,
            },
            _ => return Err(ParseError::Unsupported("link message")),
        };
        Ok(msg)
    }

    /// The sender's overlay address, when the message carries one at link level.
    pub fn sender(&self) -> Option<Address> {
        match self {
            LinkMessage::Hello { from, .. }
            | LinkMessage::HelloAck { from, .. }
            | LinkMessage::Ping { from, .. }
            | LinkMessage::Pong { from, .. }
            | LinkMessage::Close { from }
            | LinkMessage::Probe { from, .. }
            | LinkMessage::ProbeAck { from, .. }
            | LinkMessage::Neighbors { from, .. } => Some(*from),
            LinkMessage::Routed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u8) -> Address {
        let mut b = [0u8; 20];
        b[19] = n;
        Address(b)
    }

    fn ep(last: u8, port: u16) -> Endpoint {
        (Ipv4Addr::new(10, 0, 0, last), port)
    }

    #[test]
    fn link_control_messages_round_trip() {
        let msgs = vec![
            LinkMessage::Hello {
                from: a(1),
                kind: ConnectionKind::Near,
                observed: ep(2, 4001),
                token: 77,
            },
            LinkMessage::HelloAck {
                from: a(2),
                kind: ConnectionKind::Leaf,
                observed: ep(1, 4001),
                token: 77,
            },
            LinkMessage::Ping {
                from: a(3),
                nonce: 123_456,
            },
            LinkMessage::Pong {
                from: a(4),
                nonce: 123_456,
            },
            LinkMessage::Close { from: a(5) },
            LinkMessage::Probe {
                from: a(10),
                nonce: 987_654,
            },
            LinkMessage::ProbeAck {
                from: a(11),
                nonce: 987_654,
            },
            LinkMessage::Neighbors {
                from: a(6),
                neighbors: vec![(a(7), ep(7, 4001)), (a(8), ep(8, 4002))],
            },
            LinkMessage::Neighbors {
                from: a(9),
                neighbors: vec![],
            },
        ];
        for m in msgs {
            let parsed = LinkMessage::from_bytes(&m.to_bytes()).unwrap();
            assert_eq!(parsed, m);
            assert!(parsed.sender().is_some());
        }
    }

    #[test]
    fn routed_payloads_round_trip() {
        let payloads = vec![
            RoutedPayload::IpTunnel(vec![0xAB; 1400].into()),
            RoutedPayload::ConnectRequest {
                token: 9,
                initiator: a(7),
                kind: ConnectionKind::Far,
                endpoints: vec![ep(1, 4001), ep(2, 20_001)],
            },
            RoutedPayload::ConnectResponse {
                token: 9,
                responder: a(8),
                endpoints: vec![ep(3, 4001)],
            },
            RoutedPayload::DhtPut {
                key: a(9),
                value: b"172.16.0.5 -> brunet".to_vec().into(),
                ttl_ms: 120_000,
                version: 3,
            },
            RoutedPayload::DhtGet {
                key: a(9),
                token: 42,
            },
            RoutedPayload::DhtReply {
                token: 42,
                value: Some(vec![1, 2, 3].into()),
            },
            RoutedPayload::DhtReply {
                token: 43,
                value: None,
            },
            RoutedPayload::DhtCreate {
                key: a(10),
                value: vec![0xCC; 20].into(),
                ttl_ms: 60_000,
                token: 44,
            },
            RoutedPayload::DhtCreateReply {
                token: 44,
                created: true,
                existing: None,
            },
            RoutedPayload::DhtCreateReply {
                token: 45,
                created: false,
                existing: Some(vec![0xDD; 20].into()),
            },
            RoutedPayload::DhtReplicate {
                key: a(11),
                value: vec![0xEE; 4].into(),
                ttl_ms: 30_000,
                version: 7,
                token: 0,
            },
            RoutedPayload::DhtReplicate {
                key: a(11),
                value: vec![0xEF; 4].into(),
                ttl_ms: 30_000,
                version: 1,
                token: 91,
            },
            RoutedPayload::DhtReplicateAck {
                token: 91,
                stored: true,
            },
            RoutedPayload::DhtReplicateAck {
                token: 91,
                stored: false,
            },
            RoutedPayload::DhtWithdraw {
                key: a(14),
                value: vec![0xBB; 20].into(),
                version: 6,
            },
            RoutedPayload::DhtGetReplica {
                key: a(13),
                token: 92,
            },
            RoutedPayload::DhtReplicaValue {
                token: 92,
                copy: Some((vec![0xAA; 20].into(), 4, 15_000)),
            },
            RoutedPayload::DhtReplicaValue {
                token: 93,
                copy: None,
            },
            RoutedPayload::DhtRemove { key: a(12) },
            RoutedPayload::DhtSyncDigest {
                entries: vec![
                    SyncDigestEntry {
                        key: a(15),
                        version: 9,
                        value_hash: 0xDEAD_BEEF_1234_5678,
                        ttl_bucket: 14,
                    },
                    SyncDigestEntry {
                        key: a(16),
                        version: 2,
                        value_hash: 1,
                        ttl_bucket: 0,
                    },
                ],
                from_owner: true,
            },
            RoutedPayload::DhtSyncDigest {
                entries: vec![],
                from_owner: false,
            },
            RoutedPayload::DhtSyncPull {
                keys: vec![a(15), a(16)],
            },
            RoutedPayload::DhtSyncPull { keys: vec![] },
            RoutedPayload::PubSubSubscribe {
                topic: a(20),
                subscriber: a(21),
                ttl_ms: 120_000,
            },
            RoutedPayload::PubSubUnsubscribe {
                topic: a(20),
                subscriber: a(21),
            },
            RoutedPayload::PubSubPublish {
                topic: a(20),
                msg_id: 0xFEED_FACE_CAFE_BEEF,
                payload: vec![0x42; 600].into(),
            },
            RoutedPayload::PubSubDeliver {
                topic: a(20),
                msg_id: 7,
                relay_to: vec![a(22), a(23), a(24)],
                payload: vec![0x43; 600].into(),
            },
            RoutedPayload::PubSubDeliver {
                topic: a(20),
                msg_id: 8,
                relay_to: vec![],
                payload: vec![].into(),
            },
            RoutedPayload::PubSubNack {
                topic: a(20),
                msg_id: 7,
            },
            RoutedPayload::StreamSyn {
                stream_id: 0x1234_5678_9ABC_DEF0,
                window: 65_536,
            },
            RoutedPayload::StreamSynAck {
                stream_id: 0x1234_5678_9ABC_DEF0,
                window: 32_768,
            },
            RoutedPayload::StreamData {
                stream_id: 3,
                seq: 1_048_576,
                window: 16_384,
                payload: vec![0x66; 1200].into(),
            },
            RoutedPayload::StreamData {
                stream_id: 3,
                seq: 0,
                window: 0,
                payload: vec![].into(),
            },
            RoutedPayload::StreamAck {
                stream_id: 3,
                ack: 1_049_776,
                window: 65_536,
            },
            RoutedPayload::StreamFin {
                stream_id: 3,
                seq: 1_049_776,
            },
        ];
        for p in payloads {
            let pkt = RoutedPacket::new(a(1), a(2), DeliveryMode::Closest, p);
            let msg = LinkMessage::Routed(pkt.clone());
            let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(parsed, msg);
            assert_eq!(parsed.sender(), None);
        }
    }

    #[test]
    fn hop_and_ttl_fields_survive() {
        let mut pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::IpTunnel(vec![1].into()),
        );
        pkt.hops = 5;
        pkt.ttl = 9;
        let LinkMessage::Routed(parsed) =
            LinkMessage::from_bytes(&LinkMessage::Routed(pkt.clone()).to_bytes()).unwrap()
        else {
            panic!("expected routed")
        };
        assert_eq!(parsed.hops, 5);
        assert_eq!(parsed.ttl, 9);
    }

    #[test]
    fn large_tunnel_payload_uses_32bit_length() {
        let big = vec![7u8; 100_000];
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::IpTunnel(big.clone().into()),
        );
        let LinkMessage::Routed(parsed) =
            LinkMessage::from_bytes(&LinkMessage::Routed(pkt).to_bytes()).unwrap()
        else {
            panic!("expected routed")
        };
        assert_eq!(parsed.payload, RoutedPayload::IpTunnel(big.into()));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(LinkMessage::from_bytes(&[]).is_err());
        assert!(LinkMessage::from_bytes(&[99]).is_err());
        assert!(LinkMessage::from_bytes(&[0, 1, 2]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut wire = LinkMessage::Ping {
            from: a(1),
            nonce: 7,
        }
        .to_bytes();
        assert!(LinkMessage::from_bytes(&wire).is_ok());
        wire.push(0);
        assert_eq!(
            LinkMessage::from_bytes(&wire),
            Err(ParseError::BadLength("overlay trailing bytes"))
        );
        assert!(LinkMessage::from_wire(&Bytes::from(wire)).is_err());
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        // Every proper prefix of a valid message must fail cleanly, never
        // panic or decode to something else.
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Closest,
            RoutedPayload::DhtSyncDigest {
                entries: vec![SyncDigestEntry {
                    key: a(15),
                    version: 9,
                    value_hash: 3,
                    ttl_bucket: 14,
                }],
                from_owner: true,
            },
        );
        let wire = LinkMessage::Routed(pkt).to_bytes();
        for cut in 0..wire.len() {
            assert!(
                LinkMessage::from_bytes(&wire[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn inflated_count_fields_are_rejected_before_allocating() {
        // A DhtSyncPull claiming u16::MAX keys with no key bytes behind the
        // count must be rejected by the length pre-check.
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Closest,
            RoutedPayload::DhtSyncPull { keys: vec![] },
        );
        let mut wire = LinkMessage::Routed(pkt).to_bytes();
        let count_at = wire.len() - 2;
        wire[count_at..].copy_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(
            LinkMessage::from_bytes(&wire),
            Err(ParseError::BadLength("overlay element count"))
        );
        // Same for a Neighbors gossip claiming 255 entries.
        let mut wire = LinkMessage::Neighbors {
            from: a(3),
            neighbors: vec![],
        }
        .to_bytes();
        let count_at = wire.len() - 1;
        wire[count_at] = 255;
        assert_eq!(
            LinkMessage::from_bytes(&wire),
            Err(ParseError::BadLength("overlay element count"))
        );
        // And for a PubSubDeliver whose relay count is inflated past the
        // bytes actually present.
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::PubSubDeliver {
                topic: a(20),
                msg_id: 1,
                relay_to: vec![],
                payload: vec![].into(),
            },
        );
        let mut wire = LinkMessage::Routed(pkt).to_bytes();
        // relay count sits just before the 4-byte body length (empty body).
        let count_at = wire.len() - 6;
        wire[count_at..count_at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(
            LinkMessage::from_bytes(&wire),
            Err(ParseError::BadLength("overlay element count"))
        );
    }

    #[test]
    fn pubsub_deliver_forwarding_patches_cached_wire() {
        // A relay hop that bumps hops/ttl must produce exactly the bytes a
        // full re-encode would, without touching the body region.
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::PubSubDeliver {
                topic: a(20),
                msg_id: 99,
                relay_to: vec![a(3), a(4)],
                payload: vec![0x55; 900].into(),
            },
        );
        let wire = LinkMessage::Routed(pkt).to_wire();
        let LinkMessage::Routed(mut decoded) = LinkMessage::from_wire(&wire).unwrap() else {
            panic!("expected routed")
        };
        // Unmutated: the cached image is reused as-is, zero copy.
        assert!(LinkMessage::Routed(decoded.clone())
            .to_wire()
            .same_region(&wire));
        decoded.hops += 1;
        decoded.ttl -= 1;
        let patched = LinkMessage::Routed(decoded.clone()).to_wire();
        assert_eq!(
            patched.as_slice(),
            LinkMessage::Routed(decoded).to_bytes().as_slice()
        );
    }

    #[test]
    fn stream_data_forwarding_patches_cached_wire() {
        // A forwarding hop that bumps hops/ttl on a stream segment must
        // produce exactly the bytes a full re-encode would, without touching
        // the body region.
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::StreamData {
                stream_id: 42,
                seq: 9_000,
                window: 65_536,
                payload: vec![0x5A; 1400].into(),
            },
        );
        let wire = LinkMessage::Routed(pkt).to_wire();
        let LinkMessage::Routed(mut decoded) = LinkMessage::from_wire(&wire).unwrap() else {
            panic!("expected routed")
        };
        // Unmutated: the cached image is reused as-is, zero copy.
        assert!(LinkMessage::Routed(decoded.clone())
            .to_wire()
            .same_region(&wire));
        // The body itself is a slice of the wire buffer, not a copy.
        let RoutedPayload::StreamData { payload, .. } = &decoded.payload else {
            panic!("expected stream data")
        };
        assert!(payload.same_region(&wire.slice(wire.len() - payload.len()..)));
        decoded.hops += 1;
        decoded.ttl -= 1;
        let patched = LinkMessage::Routed(decoded.clone()).to_wire();
        assert_eq!(
            patched.as_slice(),
            LinkMessage::Routed(decoded).to_bytes().as_slice()
        );
    }

    #[test]
    fn stream_data_patch_rejects_mutated_fields() {
        // Any field change besides hops/ttl must fall back to a full
        // re-encode (the cached image no longer matches structurally).
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::StreamData {
                stream_id: 7,
                seq: 100,
                window: 1_000,
                payload: vec![0x11; 64].into(),
            },
        );
        let wire = LinkMessage::Routed(pkt).to_wire();
        let LinkMessage::Routed(decoded) = LinkMessage::from_wire(&wire).unwrap() else {
            panic!("expected routed")
        };
        let mut mutated = decoded.clone();
        let RoutedPayload::StreamData { seq, .. } = &mut mutated.payload else {
            panic!("expected stream data")
        };
        *seq += 1;
        let reencoded = LinkMessage::Routed(mutated.clone()).to_wire();
        assert_eq!(
            reencoded.as_slice(),
            LinkMessage::Routed(mutated).to_bytes().as_slice()
        );
    }

    #[test]
    fn pubsub_fanout_copies_share_one_wire_body() {
        // Decoding a deliver and re-addressing it to N subscribers must keep
        // every copy's body in the original wire buffer (no re-encode of the
        // message bytes per delivery).
        let body: Bytes = vec![0x77; 1200].into();
        let pkt = RoutedPacket::new(
            a(1),
            a(2),
            DeliveryMode::Exact,
            RoutedPayload::PubSubDeliver {
                topic: a(20),
                msg_id: 5,
                relay_to: vec![a(3), a(4), a(5)],
                payload: body,
            },
        );
        let wire = LinkMessage::Routed(pkt).to_wire();
        let LinkMessage::Routed(decoded) = LinkMessage::from_wire(&wire).unwrap() else {
            panic!("expected routed")
        };
        let RoutedPayload::PubSubDeliver { payload, .. } = &decoded.payload else {
            panic!("expected deliver")
        };
        let body_at = wire.len() - payload.len();
        assert!(payload.same_region(&wire.slice(body_at..)));
        for i in 0..8u8 {
            let copy = RoutedPacket::new(
                a(1),
                a(30 + i),
                DeliveryMode::Exact,
                RoutedPayload::PubSubDeliver {
                    topic: a(20),
                    msg_id: 5,
                    relay_to: vec![],
                    payload: payload.clone(),
                },
            );
            let RoutedPayload::PubSubDeliver { payload: p, .. } = &copy.payload else {
                unreachable!()
            };
            assert!(p.same_region(&wire.slice(body_at..)));
        }
    }
}
