use ipop_overlay::packets::RoutedPayload;
use ipop_overlay::vstream::VStreams;
use ipop_overlay::Address;
use ipop_packet::Bytes;
use ipop_simcore::SimTime;

fn addr(n: u8) -> Address {
    Address::from_key(&[n])
}

#[test]
fn send_after_close_claims_success_but_drops_data() {
    let ba = addr(2);
    let mut a = VStreams::new();
    let t = SimTime::ZERO;
    a.connect(t, ba, 4);
    a.take_outgoing();
    a.on_payload(
        t,
        ba,
        &RoutedPayload::StreamSynAck {
            stream_id: 4,
            window: 65536,
        },
    );
    assert!(a.send(t, ba, 4, Bytes::from(vec![1u8; 10])));
    a.close(t, ba, 4);
    // Stream is closing: docs say this must return false.
    let ok = a.send(t, ba, 4, Bytes::from(vec![2u8; 10]));
    assert!(!ok, "send after close returned {ok} while dropping the data");
}

#[test]
fn bogus_ack_beyond_snd_nxt_panics_or_wedges() {
    let ba = addr(2);
    let mut a = VStreams::new();
    let t = SimTime::ZERO;
    a.connect(t, ba, 4);
    a.take_outgoing();
    a.on_payload(
        t,
        ba,
        &RoutedPayload::StreamSynAck {
            stream_id: 4,
            window: 65536,
        },
    );
    assert!(a.send(t, ba, 4, Bytes::from(vec![1u8; 10])));
    a.take_outgoing();
    // Hostile/corrupt cumulative ack far beyond anything we sent.
    a.on_payload(
        t,
        ba,
        &RoutedPayload::StreamAck {
            stream_id: 4,
            ack: u64::MAX - 5,
            window: 65536,
        },
    );
    // Any later send hits in_flight() = snd_nxt - snd_una with snd_una > snd_nxt.
    a.send(t, ba, 4, Bytes::from(vec![2u8; 10]));
}
