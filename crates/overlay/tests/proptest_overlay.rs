//! Property-based tests for the overlay's core invariants: 160-bit ring
//! arithmetic and the wire format of routed messages.

use proptest::prelude::*;

use ipop_overlay::address::{Address, Distance};
use ipop_overlay::packets::{DeliveryMode, LinkMessage, RoutedPacket, RoutedPayload};

fn arb_addr() -> impl Strategy<Value = Address> {
    any::<[u8; 20]>().prop_map(Address)
}

proptest! {
    #[test]
    fn clockwise_distance_is_inverse_of_add(a in arb_addr(), b in arb_addr()) {
        let d = a.clockwise_distance(&b);
        prop_assert_eq!(a.add_distance(&d), b);
    }

    #[test]
    fn ring_distance_is_symmetric_and_bounded(a in arb_addr(), b in arb_addr()) {
        let ab = a.ring_distance(&b);
        let ba = b.ring_distance(&a);
        prop_assert_eq!(ab, ba);
        // The ring distance can never exceed half the ring.
        let mut half = [0u8; 20];
        half[0] = 0x80;
        prop_assert!(ab <= Distance(half));
        prop_assert_eq!(a.ring_distance(&a), Distance::ZERO);
    }

    #[test]
    fn triangle_inequality_on_the_ring(a in arb_addr(), b in arb_addr(), c in arb_addr()) {
        // Ring distance satisfies the triangle inequality (in f64 approximation,
        // with slack for rounding of 160-bit values).
        let ab = a.ring_distance(&b).as_f64();
        let bc = b.ring_distance(&c).as_f64();
        let ac = a.ring_distance(&c).as_f64();
        prop_assert!(ac <= (ab + bc) * 1.0000001);
    }

    #[test]
    fn ip_tunnel_messages_round_trip(src in arb_addr(), dst in arb_addr(),
                                     hops in 0u8..64, ttl in 0u8..64,
                                     payload in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let mut pkt = RoutedPacket::new(src, dst, DeliveryMode::Exact, RoutedPayload::IpTunnel(payload.into()));
        pkt.hops = hops;
        pkt.ttl = ttl;
        let msg = LinkMessage::Routed(pkt);
        let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn dht_messages_round_trip(src in arb_addr(), dst in arb_addr(), key in arb_addr(),
                               token: u64, ttl_ms in 0u64..86_400_000, created: bool,
                               version: u64,
                               value in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..512))) {
        let bytes_value = value.clone().map(ipop_packet::Bytes::from);
        for payload in [
            RoutedPayload::DhtPut {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                ttl_ms,
                version,
            },
            RoutedPayload::DhtGet { key, token },
            RoutedPayload::DhtReply { token, value: bytes_value.clone() },
            RoutedPayload::DhtCreate {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                ttl_ms,
                token,
            },
            RoutedPayload::DhtCreateReply {
                token,
                created,
                existing: bytes_value.clone(),
            },
            RoutedPayload::DhtReplicate {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                ttl_ms,
                version,
                token,
            },
            RoutedPayload::DhtReplicateAck {
                token,
                stored: created,
            },
            RoutedPayload::DhtGetReplica { key, token },
            RoutedPayload::DhtWithdraw {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                version,
            },
            RoutedPayload::DhtReplicaValue {
                token,
                copy: bytes_value.clone().map(|v| (v, version, ttl_ms)),
            },
            RoutedPayload::DhtRemove { key },
        ] {
            let msg = LinkMessage::Routed(RoutedPacket::new(src, dst, DeliveryMode::Closest, payload));
            let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
            prop_assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn forwarding_patch_path_matches_full_reencode(
        src in arb_addr(), dst in arb_addr(),
        hops in 0u8..64, ttl in 1u8..64, extra_hops in 1u8..8,
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        // The forwarding fast path (patching hops/ttl into the cached wire
        // image without re-encoding the tunnelled payload) must be
        // byte-identical to a full re-serialization — for the shared-buffer
        // decode path and the plain-slice decode path alike.
        let mut pkt = RoutedPacket::new(src, dst, DeliveryMode::Exact,
            RoutedPayload::IpTunnel(payload.into()));
        pkt.hops = hops;
        pkt.ttl = ttl;
        let origin_wire = LinkMessage::Routed(pkt).to_wire();

        let via_shared = LinkMessage::from_wire(&origin_wire).unwrap();
        let via_slice = LinkMessage::from_bytes(&origin_wire).unwrap();
        prop_assert_eq!(&via_shared, &via_slice);

        for mut msg in [via_shared, via_slice] {
            let LinkMessage::Routed(fwd) = &mut msg else { panic!("routed") };
            // What a forwarding node does before sending on the next hop.
            fwd.hops = fwd.hops.saturating_add(extra_hops);
            fwd.ttl = fwd.ttl.saturating_sub(1);
            let fast = msg.to_wire();
            let slow = msg.to_bytes();
            prop_assert_eq!(fast.as_slice(), slow.as_slice());
            // And the patched bytes still decode to the mutated message.
            prop_assert_eq!(&LinkMessage::from_wire(&fast).unwrap(), &msg);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Parsing untrusted bytes must either succeed or return an error — never panic.
        let _ = LinkMessage::from_bytes(&data);
    }
}
