//! Property-based tests for the overlay's core invariants: 160-bit ring
//! arithmetic and the wire format of routed messages.

use proptest::prelude::*;

use ipop_overlay::address::{Address, Distance};
use ipop_overlay::packets::{DeliveryMode, LinkMessage, RoutedPacket, RoutedPayload};

fn arb_addr() -> impl Strategy<Value = Address> {
    any::<[u8; 20]>().prop_map(Address)
}

proptest! {
    #[test]
    fn clockwise_distance_is_inverse_of_add(a in arb_addr(), b in arb_addr()) {
        let d = a.clockwise_distance(&b);
        prop_assert_eq!(a.add_distance(&d), b);
    }

    #[test]
    fn ring_distance_is_symmetric_and_bounded(a in arb_addr(), b in arb_addr()) {
        let ab = a.ring_distance(&b);
        let ba = b.ring_distance(&a);
        prop_assert_eq!(ab, ba);
        // The ring distance can never exceed half the ring.
        let mut half = [0u8; 20];
        half[0] = 0x80;
        prop_assert!(ab <= Distance(half));
        prop_assert_eq!(a.ring_distance(&a), Distance::ZERO);
    }

    #[test]
    fn triangle_inequality_on_the_ring(a in arb_addr(), b in arb_addr(), c in arb_addr()) {
        // Ring distance satisfies the triangle inequality (in f64 approximation,
        // with slack for rounding of 160-bit values).
        let ab = a.ring_distance(&b).as_f64();
        let bc = b.ring_distance(&c).as_f64();
        let ac = a.ring_distance(&c).as_f64();
        prop_assert!(ac <= (ab + bc) * 1.0000001);
    }

    #[test]
    fn ip_tunnel_messages_round_trip(src in arb_addr(), dst in arb_addr(),
                                     hops in 0u8..64, ttl in 0u8..64,
                                     payload in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let mut pkt = RoutedPacket::new(src, dst, DeliveryMode::Exact, RoutedPayload::IpTunnel(payload.into()));
        pkt.hops = hops;
        pkt.ttl = ttl;
        let msg = LinkMessage::Routed(pkt);
        let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn dht_messages_round_trip(src in arb_addr(), dst in arb_addr(), key in arb_addr(),
                               token: u64, ttl_ms in 0u64..86_400_000, created: bool,
                               version: u64,
                               value in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..512))) {
        let bytes_value = value.clone().map(ipop_packet::Bytes::from);
        for payload in [
            RoutedPayload::DhtPut {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                ttl_ms,
                version,
            },
            RoutedPayload::DhtGet { key, token },
            RoutedPayload::DhtReply { token, value: bytes_value.clone() },
            RoutedPayload::DhtCreate {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                ttl_ms,
                token,
            },
            RoutedPayload::DhtCreateReply {
                token,
                created,
                existing: bytes_value.clone(),
            },
            RoutedPayload::DhtReplicate {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                ttl_ms,
                version,
                token,
            },
            RoutedPayload::DhtReplicateAck {
                token,
                stored: created,
            },
            RoutedPayload::DhtGetReplica { key, token },
            RoutedPayload::DhtWithdraw {
                key,
                value: bytes_value.clone().unwrap_or_default(),
                version,
            },
            RoutedPayload::DhtReplicaValue {
                token,
                copy: bytes_value.clone().map(|v| (v, version, ttl_ms)),
            },
            RoutedPayload::DhtRemove { key },
        ] {
            let msg = LinkMessage::Routed(RoutedPacket::new(src, dst, DeliveryMode::Closest, payload));
            let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
            prop_assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn forwarding_patch_path_matches_full_reencode(
        src in arb_addr(), dst in arb_addr(),
        hops in 0u8..64, ttl in 1u8..64, extra_hops in 1u8..8,
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        // The forwarding fast path (patching hops/ttl into the cached wire
        // image without re-encoding the tunnelled payload) must be
        // byte-identical to a full re-serialization — for the shared-buffer
        // decode path and the plain-slice decode path alike.
        let mut pkt = RoutedPacket::new(src, dst, DeliveryMode::Exact,
            RoutedPayload::IpTunnel(payload.into()));
        pkt.hops = hops;
        pkt.ttl = ttl;
        let origin_wire = LinkMessage::Routed(pkt).to_wire();

        let via_shared = LinkMessage::from_wire(&origin_wire).unwrap();
        let via_slice = LinkMessage::from_bytes(&origin_wire).unwrap();
        prop_assert_eq!(&via_shared, &via_slice);

        for mut msg in [via_shared, via_slice] {
            let LinkMessage::Routed(fwd) = &mut msg else { panic!("routed") };
            // What a forwarding node does before sending on the next hop.
            fwd.hops = fwd.hops.saturating_add(extra_hops);
            fwd.ttl = fwd.ttl.saturating_sub(1);
            let fast = msg.to_wire();
            let slow = msg.to_bytes();
            prop_assert_eq!(fast.as_slice(), slow.as_slice());
            // And the patched bytes still decode to the mutated message.
            prop_assert_eq!(&LinkMessage::from_wire(&fast).unwrap(), &msg);
        }
    }

    #[test]
    fn pubsub_messages_round_trip(src in arb_addr(), dst in arb_addr(), topic in arb_addr(),
                                  subscriber in arb_addr(), msg_id: u64,
                                  ttl_ms in 0u64..86_400_000,
                                  relay_to in proptest::collection::vec(arb_addr(), 0..24),
                                  body in proptest::collection::vec(any::<u8>(), 0..1024)) {
        for payload in [
            RoutedPayload::PubSubSubscribe { topic, subscriber, ttl_ms },
            RoutedPayload::PubSubUnsubscribe { topic, subscriber },
            RoutedPayload::PubSubPublish { topic, msg_id, payload: body.clone().into() },
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id,
                relay_to: relay_to.clone(),
                payload: body.clone().into(),
            },
        ] {
            let msg = LinkMessage::Routed(RoutedPacket::new(src, dst, DeliveryMode::Closest, payload));
            let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
            prop_assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn pubsub_deliver_patch_path_matches_full_reencode(
        src in arb_addr(), dst in arb_addr(), topic in arb_addr(),
        msg_id: u64, hops in 0u8..64, ttl in 1u8..64, extra_hops in 1u8..8,
        relay_to in proptest::collection::vec(arb_addr(), 0..24),
        body in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        // Mirror of `forwarding_patch_path_matches_full_reencode` for the
        // pub/sub fan-out payload: a relay hop patching hops/ttl into the
        // cached wire image must be byte-identical to a full re-encode.
        let mut pkt = RoutedPacket::new(src, dst, DeliveryMode::Exact,
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id,
                relay_to,
                payload: body.into(),
            });
        pkt.hops = hops;
        pkt.ttl = ttl;
        let origin_wire = LinkMessage::Routed(pkt).to_wire();

        let via_shared = LinkMessage::from_wire(&origin_wire).unwrap();
        let via_slice = LinkMessage::from_bytes(&origin_wire).unwrap();
        prop_assert_eq!(&via_shared, &via_slice);

        for mut msg in [via_shared, via_slice] {
            let LinkMessage::Routed(fwd) = &mut msg else { panic!("routed") };
            fwd.hops = fwd.hops.saturating_add(extra_hops);
            fwd.ttl = fwd.ttl.saturating_sub(1);
            let fast = msg.to_wire();
            let slow = msg.to_bytes();
            prop_assert_eq!(fast.as_slice(), slow.as_slice());
            prop_assert_eq!(&LinkMessage::from_wire(&fast).unwrap(), &msg);
        }
    }

    #[test]
    fn stream_messages_round_trip(src in arb_addr(), dst in arb_addr(), topic in arb_addr(),
                                  stream_id: u64, seq: u64, ack: u64, msg_id: u64,
                                  window: u32,
                                  body in proptest::collection::vec(any::<u8>(), 0..1400)) {
        for payload in [
            RoutedPayload::PubSubNack { topic, msg_id },
            RoutedPayload::StreamSyn { stream_id, window },
            RoutedPayload::StreamSynAck { stream_id, window },
            RoutedPayload::StreamData { stream_id, seq, window, payload: body.clone().into() },
            RoutedPayload::StreamAck { stream_id, ack, window },
            RoutedPayload::StreamFin { stream_id, seq },
        ] {
            let msg = LinkMessage::Routed(RoutedPacket::new(src, dst, DeliveryMode::Exact, payload));
            let parsed = LinkMessage::from_bytes(&msg.to_bytes()).unwrap();
            prop_assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn stream_data_patch_path_matches_full_reencode(
        src in arb_addr(), dst in arb_addr(),
        stream_id: u64, seq: u64, window: u32,
        hops in 0u8..64, ttl in 1u8..64, extra_hops in 1u8..8,
        body in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        // Mirror of `forwarding_patch_path_matches_full_reencode` for the
        // virtual-stream data segment: an intermediate node forwarding a
        // DATA frame patches hops/ttl into the cached wire image, and that
        // must be byte-identical to a full re-encode.
        let mut pkt = RoutedPacket::new(src, dst, DeliveryMode::Exact,
            RoutedPayload::StreamData {
                stream_id,
                seq,
                window,
                payload: body.into(),
            });
        pkt.hops = hops;
        pkt.ttl = ttl;
        let origin_wire = LinkMessage::Routed(pkt).to_wire();

        let via_shared = LinkMessage::from_wire(&origin_wire).unwrap();
        let via_slice = LinkMessage::from_bytes(&origin_wire).unwrap();
        prop_assert_eq!(&via_shared, &via_slice);

        for mut msg in [via_shared, via_slice] {
            let LinkMessage::Routed(fwd) = &mut msg else { panic!("routed") };
            fwd.hops = fwd.hops.saturating_add(extra_hops);
            fwd.ttl = fwd.ttl.saturating_sub(1);
            let fast = msg.to_wire();
            let slow = msg.to_bytes();
            prop_assert_eq!(fast.as_slice(), slow.as_slice());
            prop_assert_eq!(&LinkMessage::from_wire(&fast).unwrap(), &msg);
        }
    }

    #[test]
    fn pubsub_fanout_shares_one_wire_image(
        src in arb_addr(), topic in arb_addr(), msg_id: u64,
        recipients in proptest::collection::vec(arb_addr(), 1..32),
        fanout in 1usize..8,
        body in proptest::collection::vec(any::<u8>(), 1..2000),
    ) {
        // Decoding one Deliver off the wire and re-addressing its body to N
        // subscribers (what a relay does) must keep every copy's body inside
        // the original receive buffer — same Arc region, no copies.
        let wire = LinkMessage::Routed(RoutedPacket::new(
            src, recipients[0], DeliveryMode::Exact,
            RoutedPayload::PubSubDeliver {
                topic,
                msg_id,
                relay_to: recipients.clone(),
                payload: body.clone().into(),
            },
        )).to_wire();
        let LinkMessage::Routed(decoded) = LinkMessage::from_wire(&wire).unwrap() else {
            panic!("routed")
        };
        let RoutedPayload::PubSubDeliver { payload, .. } = &decoded.payload else {
            panic!("deliver")
        };
        let body_at = wire.len() - payload.len();
        prop_assert!(payload.same_region(&wire.slice(body_at..)));
        // Plan the next tree level and re-address the shared body to each head.
        for (head, rest) in ipop_overlay::pubsub::plan_fanout(&recipients, fanout) {
            let copy = RoutedPacket::new(src, head, DeliveryMode::Exact,
                RoutedPayload::PubSubDeliver {
                    topic,
                    msg_id,
                    relay_to: rest,
                    payload: payload.clone(),
                });
            let RoutedPayload::PubSubDeliver { payload: shared, .. } = &copy.payload else {
                panic!("deliver")
            };
            prop_assert!(shared.same_region(&wire.slice(body_at..)),
                "fan-out copy re-copied the message body");
        }
    }

    #[test]
    fn subscriber_set_codec_round_trips(
        addrs in proptest::collection::vec(arb_addr(), 0..64),
        expiries in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let entries: Vec<(Address, u64)> =
            addrs.into_iter().zip(expiries).collect();
        let encoded = ipop_overlay::pubsub::encode_subscriber_set(&entries);
        let decoded = ipop_overlay::pubsub::decode_subscriber_set(&encoded).unwrap();
        prop_assert_eq!(decoded, entries);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Parsing untrusted bytes must either succeed or return an error — never panic.
        let _ = LinkMessage::from_bytes(&data);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_subscriber_set_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = ipop_overlay::pubsub::decode_subscriber_set(&ipop_packet::Bytes::from(data));
    }
}

// ------------------------------------------------- ordered connection table

use ipop_overlay::packets::ConnectionKind;
use ipop_overlay::table::{Connection, ConnectionState, ConnectionTable};

/// Build a table from generated words: each word yields a peer address (low
/// byte stretched over the top bytes so distance ties across the ring are
/// common), a state and a kind. Returns the table plus the established
/// connections for the linear reference scan.
fn build_table(words: &[u64]) -> (ConnectionTable, Vec<(Address, ConnectionKind)>) {
    let mut table = ConnectionTable::new();
    let mut reference = Vec::new();
    for &w in words {
        let mut b = [0u8; 20];
        // Tiny address space (16 distinct values) to force collisions, exact
        // hits, and equidistant pairs around any target.
        b[0] = ((w & 0xF) as u8) << 4;
        let peer = Address(b);
        let state = if w & 0x10 != 0 {
            ConnectionState::Established
        } else {
            ConnectionState::Connecting
        };
        let kind = match (w >> 5) & 0x3 {
            0 => ConnectionKind::Near,
            1 => ConnectionKind::Far,
            _ => ConnectionKind::Leaf,
        };
        table.upsert(Connection {
            peer,
            endpoint: (std::net::Ipv4Addr::new(10, 0, 0, 1), 4001),
            kind,
            state,
            last_heard: SimTime::ZERO,
            last_ping_sent: SimTime::ZERO,
        });
        reference.retain(|(p, _)| *p != peer);
        if state == ConnectionState::Established {
            reference.push((peer, kind));
        }
        if w & 0x100 != 0 {
            // Occasionally delete, so the index sees removals too.
            table.remove(&peer);
            reference.retain(|(p, _)| *p != peer);
        }
    }
    reference.sort_by_key(|(p, _)| *p);
    (table, reference)
}

fn target_addr(sel: u8) -> Address {
    let mut b = [0u8; 20];
    b[0] = sel;
    Address(b)
}

proptest! {
    #[test]
    fn ordered_table_matches_linear_reference(
        words in proptest::collection::vec(any::<u64>(), 0..24),
        target_sel in any::<u8>(),
        exclude_sel in any::<u8>(),
    ) {
        let (table, reference) = build_table(&words);
        let target = target_addr(target_sel);
        let exclude = target_addr((exclude_sel & 0xF) << 4);

        // closest_to / closest_to_excluding == min_by_key over an
        // ascending-address linear scan (first minimum wins ties).
        for excl in [None, Some(&exclude)] {
            let expect = reference
                .iter()
                .filter(|(p, _)| excl != Some(p))
                .min_by_key(|(p, _)| p.ring_distance(&target))
                .map(|(p, _)| *p);
            let got = table.closest_to_excluding(&target, excl).map(|c| c.peer);
            prop_assert_eq!(got, expect, "target {:?} exclude {:?}", target, excl);
        }

        // right/left neighbors == stable sort by clockwise distance.
        for count in [1usize, 3, reference.len() + 1] {
            let mut right: Vec<Address> = reference.iter().map(|(p, _)| *p).collect();
            right.sort_by_key(|p| target.clockwise_distance(p));
            let got_right: Vec<Address> = table
                .right_neighbors(&target, count)
                .iter()
                .map(|c| c.peer)
                .collect();
            prop_assert_eq!(&got_right[..], &right[..count.min(right.len())]);

            let mut left: Vec<Address> = reference.iter().map(|(p, _)| *p).collect();
            left.sort_by_key(|p| p.clockwise_distance(&target));
            let got_left: Vec<Address> = table
                .left_neighbors(&target, count)
                .iter()
                .map(|c| c.peer)
                .collect();
            prop_assert_eq!(&got_left[..], &left[..count.min(left.len())]);
        }

        // Established iteration, peers() and kind counts agree with the
        // reference set.
        let got_peers: Vec<Address> = table.peers();
        let expect_peers: Vec<Address> = reference.iter().map(|(p, _)| *p).collect();
        prop_assert_eq!(got_peers, expect_peers);
        for kind in [ConnectionKind::Near, ConnectionKind::Far, ConnectionKind::Leaf] {
            prop_assert_eq!(
                table.count_kind(kind),
                reference.iter().filter(|(_, k)| *k == kind).count()
            );
        }
    }
}

// ----------------------------------------------------------- anti-entropy

use std::collections::BTreeMap;

use ipop_overlay::dht::{
    apply_record_copy, sync_compare, sync_digest_entry, DhtRecord, DhtStore, SoftStateStore,
    SyncAction, SyncDigestEntry, SYNC_TTL_BUCKET_MS,
};
use ipop_simcore::{Duration, SimTime};

/// `now` for the anti-entropy proptests: far enough from zero that expired
/// records (negative TTL offsets) never underflow.
fn sync_now() -> SimTime {
    SimTime::ZERO + Duration::from_secs(60)
}

/// One generated record: `(key index, value index, version, expiry offset in
/// ms relative to now — non-positive means already expired)`.
type GenRecord = (u8, u8, u64, i64);

/// The vendored proptest subset has no tuple strategies: generate packed
/// `u64`s and unpack the record fields deterministically.
fn arb_records() -> impl Strategy<Value = Vec<GenRecord>> {
    proptest::collection::vec(any::<u64>(), 0..12).prop_map(|raw| {
        raw.into_iter()
            .map(|r| {
                let key_idx = (r & 0xFF) as u8 % 6;
                let value_idx = ((r >> 8) & 0xFF) as u8 % 4;
                let version = 1 + ((r >> 16) & 0xFF) % 5;
                let expiry_off_ms = ((r >> 24) % 630_000) as i64 - 30_000;
                (key_idx, value_idx, version, expiry_off_ms)
            })
            .collect()
    })
}

fn gen_key(idx: u8) -> Address {
    let mut b = [0u8; 20];
    b[0] = 0xA0 + idx;
    Address(b)
}

fn gen_value(idx: u8) -> Vec<u8> {
    vec![idx + 1; 3 + idx as usize]
}

fn build_store(records: &[GenRecord]) -> SoftStateStore {
    let now = sync_now();
    let mut store = SoftStateStore::new();
    for &(k, v, version, off_ms) in records {
        let expires_at = if off_ms <= 0 {
            SimTime::ZERO + Duration::from_millis((60_000 + off_ms) as u64)
        } else {
            now + Duration::from_millis(off_ms as u64)
        };
        store.insert(
            gen_key(k),
            DhtRecord {
                value: gen_value(v).into(),
                expires_at,
                version,
                replica: true,
                replicated_to: Vec::new(),
            },
        );
    }
    store
}

/// Live contents of a store as a comparable map: key → (value bytes, version).
fn live_contents(store: &SoftStateStore, now: SimTime) -> BTreeMap<Address, (Vec<u8>, u64)> {
    store
        .keys()
        .into_iter()
        .filter_map(|k| {
            store
                .get(&k)
                .filter(|r| !r.expired(now))
                .map(|r| (k, (r.value.to_vec(), r.version)))
        })
        .collect()
}

/// One digest exchange from `src` to `dst`, exactly as the overlay node runs
/// it: `dst` pulls records the digest has fresher and pushes back records it
/// holds fresher, both applied under the store-level freshness rule.
fn sweep_round(src: &mut SoftStateStore, dst: &mut SoftStateStore, now: SimTime) {
    let entries: Vec<SyncDigestEntry> = src
        .keys()
        .into_iter()
        .filter_map(|k| {
            src.get(&k)
                .filter(|r| !r.expired(now))
                .map(|r| sync_digest_entry(k, r, now))
        })
        .collect();
    let mut pulls = Vec::new();
    let mut pushes = Vec::new();
    for e in &entries {
        match sync_compare(e, dst.get(&e.key), now) {
            SyncAction::InSync => {}
            SyncAction::Pull => pulls.push(e.key),
            SyncAction::Push => pushes.push(e.key),
            SyncAction::Exchange => {
                pulls.push(e.key);
                pushes.push(e.key);
            }
        }
    }
    for k in pulls {
        if let Some(r) = src.get(&k).filter(|r| !r.expired(now)) {
            let (value, ttl_ms, version) = (r.value.clone(), r.remaining_ttl_ms(now), r.version);
            apply_record_copy(dst, k, &value, ttl_ms, version, true, now);
        }
    }
    for k in pushes {
        if let Some(r) = dst.get(&k).filter(|r| !r.expired(now)) {
            let (value, ttl_ms, version) = (r.value.clone(), r.remaining_ttl_ms(now), r.version);
            apply_record_copy(src, k, &value, ttl_ms, version, true, now);
        }
    }
}

proptest! {
    #[test]
    fn anti_entropy_converges_arbitrary_divergent_stores(
        a_records in arb_records(),
        b_records in arb_records(),
    ) {
        let now = sync_now();
        let mut a = build_store(&a_records);
        let mut b = build_store(&b_records);
        // Everything that was live *somewhere* before the sync: the only
        // records allowed to exist afterwards (nothing expired or absent may
        // be resurrected).
        let mut input_live: BTreeMap<Address, Vec<(Vec<u8>, u64)>> = BTreeMap::new();
        for (k, vv) in live_contents(&a, now).into_iter().chain(live_contents(&b, now)) {
            input_live.entry(k).or_default().push(vv);
        }

        // One full bidirectional exchange converges a two-store system.
        sweep_round(&mut a, &mut b, now);
        sweep_round(&mut b, &mut a, now);

        let live_a = live_contents(&a, now);
        let live_b = live_contents(&b, now);
        prop_assert_eq!(&live_a, &live_b, "stores converged to identical live contents");
        for (k, vv) in &live_a {
            let candidates = input_live.get(k);
            prop_assert!(
                candidates.is_some_and(|c| c.contains(vv)),
                "record under {:?} was resurrected from nothing: {:?}",
                k, vv
            );
            // Expiries agree within the skew tolerance the bucket scheme allows.
            let ea = a.get(k).unwrap().expires_at;
            let eb = b.get(k).unwrap().expires_at;
            let diff = ea.saturating_since(eb).max(eb.saturating_since(ea));
            prop_assert!(
                diff < Duration::from_millis(2 * SYNC_TTL_BUCKET_MS),
                "expiry skew exceeds the bucket tolerance: {:?}", diff
            );
        }

        // And the exchange is a fixpoint: a second full round moves nothing.
        sweep_round(&mut a, &mut b, now);
        sweep_round(&mut b, &mut a, now);
        prop_assert_eq!(live_contents(&a, now), live_a);
        prop_assert_eq!(live_contents(&b, now), live_b);
    }
}

// --------------------------------------------------------------------------
// Greedy routing over a converged ring with shortcuts: every Exact-mode
// packet reaches its target, with no loops, over *real* OverlayNodes (the
// same `route` path production runs), including asymmetric Far edges.

use std::net::Ipv4Addr;

use ipop_overlay::node::{OverlayConfig, OverlayNode};
use ipop_simcore::StreamRng;

fn ep_of(i: usize) -> (Ipv4Addr, u16) {
    (
        Ipv4Addr::new(10, 9, (i / 200) as u8, (i % 200 + 1) as u8),
        4001,
    )
}

fn idx_of(ep: &(Ipv4Addr, u16)) -> usize {
    let o = ep.0.octets();
    o[2] as usize * 200 + o[3] as usize - 1
}

/// A ring of `n` real nodes at the given addresses with `near_per_side = 2`
/// near edges seeded both ways.
fn converged_ring(addrs: &[Address]) -> Vec<OverlayNode> {
    let n = addrs.len();
    let now = SimTime::ZERO;
    let mut nodes: Vec<OverlayNode> = (0..n)
        .map(|i| {
            let cfg = OverlayConfig::new(addrs[i], ep_of(i))
                .without_link_monitor()
                .without_anti_entropy();
            OverlayNode::new(cfg, StreamRng::new(7, &format!("route-{i}")))
        })
        .collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        for d in 1..=2usize.min(n / 2) {
            for j in [(i + d) % n, (i + n - d) % n] {
                if j != i {
                    node.seed_connection(now, addrs[j], ep_of(j), ConnectionKind::Near);
                }
            }
        }
    }
    nodes
}

/// Deliver every queued link message (zero latency) until the network goes
/// quiet; panics if it fails to quiesce (a routing loop would spin forever).
fn pump_until_quiet(nodes: &mut [OverlayNode]) {
    let now = SimTime::ZERO;
    for _ in 0..10_000 {
        let mut moved = false;
        for i in 0..nodes.len() {
            for (ep, msg) in nodes[i].take_outbox() {
                nodes[idx_of(&ep)].on_message(now, ep_of(i), msg);
                moved = true;
            }
        }
        if !moved {
            return;
        }
    }
    panic!("network failed to quiesce: routing loop");
}

proptest! {
    /// Over a converged ring plus arbitrary (possibly one-directional) Far
    /// shortcuts, every Exact-mode probe is delivered to its target in at
    /// most N hops with nothing dropped — greedy routing's
    /// strictly-decreasing-distance rule can neither loop nor blackhole.
    #[test]
    fn greedy_routing_reaches_every_target(
        words in proptest::collection::vec(any::<u64>(), 12..24),
        shortcuts in proptest::collection::vec(any::<u64>(), 0..32),
        pairs in proptest::collection::vec(any::<u64>(), 1..24),
    ) {
        // Distinct ring addresses from the generated words.
        let mut addrs: Vec<Address> = words
            .iter()
            .map(|&w| {
                let mut b = [0u8; 20];
                b[..8].copy_from_slice(&w.to_be_bytes());
                Address(b)
            })
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        if addrs.len() < 8 {
            return; // too many collisions in the drawn words; skip the case
        }
        let n = addrs.len();
        let mut nodes = converged_ring(&addrs);

        // Asymmetric shortcuts: seeded in ONE direction only.
        for &w in &shortcuts {
            let i = (w % n as u64) as usize;
            let j = ((w >> 16) % n as u64) as usize;
            if i != j {
                nodes[i].seed_connection(
                    SimTime::ZERO, addrs[j], ep_of(j), ConnectionKind::Far,
                );
            }
        }

        for &w in &pairs {
            let src = (w % n as u64) as usize;
            let mut dst = ((w >> 16) % n as u64) as usize;
            if dst == src {
                dst = (src + 1) % n;
            }
            nodes[src].send_ip(SimTime::ZERO, addrs[dst], vec![0xAB; 4]);
            pump_until_quiet(&mut nodes);
            let got = nodes[dst].take_delivered();
            prop_assert_eq!(got.len(), 1, "probe {}->{} not delivered", src, dst);
            prop_assert!(
                (got[0].hops as usize) < n,
                "{} hops on an {}-node ring: a loop slipped through",
                got[0].hops, n
            );
        }
        for node in &nodes {
            let s = node.stats();
            prop_assert_eq!(s.dropped_no_target, 0, "blackholed packet");
            prop_assert_eq!(s.dropped_ttl, 0, "TTL exhaustion on a converged ring");
        }
    }
}

/// Two nodes exactly equidistant from a key, each holding a Far edge to the
/// other (the shape left behind by asymmetric shortcut formation): the
/// strictly-decreasing-distance rule forbids the equal-distance forward, so
/// the packet is dropped at the first of the pair instead of ping-ponging
/// between them until TTL death.
#[test]
fn exact_mode_never_ping_pongs_between_equidistant_nodes() {
    let mk = |hi: u8| {
        let mut b = [0u8; 20];
        b[0] = hi;
        Address(b)
    };
    let (a, b, key) = (mk(0x10), mk(0x30), mk(0x20));
    assert_eq!(a.ring_distance(&key), b.ring_distance(&key), "test shape");

    let now = SimTime::ZERO;
    let mut node_a = OverlayNode::new(
        OverlayConfig::new(a, ep_of(0)).without_link_monitor(),
        StreamRng::new(1, "pp-a"),
    );
    let mut node_b = OverlayNode::new(
        OverlayConfig::new(b, ep_of(1)).without_link_monitor(),
        StreamRng::new(1, "pp-b"),
    );
    node_a.seed_connection(now, b, ep_of(1), ConnectionKind::Far);
    node_b.seed_connection(now, a, ep_of(0), ConnectionKind::Far);

    // A originates an Exact packet for the key. B is no closer than A, so A
    // must not forward: the packet dies at A as closest-but-not-target.
    node_a.send_ip(now, key, vec![1, 2, 3]);
    assert!(
        node_a.take_outbox().is_empty(),
        "equal-distance forward would start the ping-pong"
    );
    assert_eq!(node_a.stats().dropped_no_target, 1);
    assert_eq!(node_a.stats().forwarded, 0);

    // The mirror image behaves identically.
    node_b.send_ip(now, key, vec![4, 5, 6]);
    assert!(node_b.take_outbox().is_empty());
    assert_eq!(node_b.stats().dropped_no_target, 1);

    // Sanity: a strictly closer neighbour IS used.
    let c = mk(0x1E);
    node_a.seed_connection(now, c, ep_of(2), ConnectionKind::Far);
    node_a.send_ip(now, key, vec![7]);
    let out = node_a.take_outbox();
    assert_eq!(out.len(), 1, "closer hop must be taken");
    assert_eq!(out[0].0, ep_of(2));
}
