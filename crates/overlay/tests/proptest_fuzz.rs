//! Deterministic in-tree fuzzing of the overlay wire decoders. Two corpora
//! per message family: pure byte soup, and valid wire images put through the
//! mutations a hostile or lossy network actually performs (byte flips,
//! truncation, trailing garbage). Every input must decode to a value or a
//! typed [`ipop_packet::ParseError`] — never panic, never mis-parse into an
//! allocation bomb — and whatever decodes must re-encode without panicking.

use proptest::prelude::*;

use ipop_overlay::address::Address;
use ipop_overlay::dht::SyncDigestEntry;
use ipop_overlay::packets::{
    ConnectionKind, DeliveryMode, LinkMessage, RoutedPacket, RoutedPayload,
};
use ipop_packet::Bytes;

fn arb_addr() -> impl Strategy<Value = Address> {
    any::<[u8; 20]>().prop_map(Address)
}

/// One valid wire image from every message family the overlay speaks, with
/// arbitrary field values: the seed corpus the mutations start from.
fn corpus(a: Address, b: Address, token: u64, payload: Vec<u8>, entries: u8) -> Vec<Vec<u8>> {
    let ep = (std::net::Ipv4Addr::new(10, 9, 8, 7), 4001);
    let digest = (0..entries)
        .map(|i| SyncDigestEntry {
            key: Address([i; 20]),
            version: u64::from(i),
            value_hash: token ^ u64::from(i),
            ttl_bucket: u64::from(i) * 3,
        })
        .collect();
    let neighbors = (0..entries).map(|i| (Address([i; 20]), ep)).collect();
    let routed = |p: RoutedPayload| {
        LinkMessage::Routed(RoutedPacket::new(a, b, DeliveryMode::Closest, p)).to_bytes()
    };
    vec![
        LinkMessage::Hello {
            from: a,
            kind: ConnectionKind::Near,
            observed: ep,
            token,
        }
        .to_bytes(),
        LinkMessage::Ping {
            from: a,
            nonce: token,
        }
        .to_bytes(),
        LinkMessage::Probe {
            from: a,
            nonce: token,
        }
        .to_bytes(),
        LinkMessage::ProbeAck {
            from: b,
            nonce: token,
        }
        .to_bytes(),
        LinkMessage::Neighbors { from: a, neighbors }.to_bytes(),
        LinkMessage::HelloAck {
            from: b,
            kind: ConnectionKind::Leaf,
            observed: ep,
            token,
        }
        .to_bytes(),
        LinkMessage::Pong {
            from: b,
            nonce: token,
        }
        .to_bytes(),
        LinkMessage::Close { from: a }.to_bytes(),
        routed(RoutedPayload::IpTunnel(payload.clone().into())),
        routed(RoutedPayload::ConnectRequest {
            token,
            initiator: a,
            kind: ConnectionKind::Far,
            endpoints: vec![ep, ep],
        }),
        routed(RoutedPayload::ConnectResponse {
            token,
            responder: b,
            endpoints: vec![ep],
        }),
        routed(RoutedPayload::DhtPut {
            key: b,
            value: Bytes::from(payload.clone()),
            ttl_ms: token,
            version: token,
        }),
        routed(RoutedPayload::DhtGet { key: a, token }),
        routed(RoutedPayload::DhtReply {
            token,
            value: Some(Bytes::from(payload.clone())),
        }),
        routed(RoutedPayload::DhtReply { token, value: None }),
        routed(RoutedPayload::DhtCreate {
            key: a,
            value: Bytes::from(payload.clone()),
            ttl_ms: token,
            token,
        }),
        routed(RoutedPayload::DhtCreateReply {
            token,
            created: false,
            existing: Some(Bytes::from(payload.clone())),
        }),
        routed(RoutedPayload::DhtCreateReply {
            token,
            created: true,
            existing: None,
        }),
        routed(RoutedPayload::DhtReplicate {
            key: b,
            value: Bytes::from(payload.clone()),
            ttl_ms: token,
            version: token,
            token,
        }),
        routed(RoutedPayload::DhtReplicateAck {
            token,
            stored: entries % 2 == 0,
        }),
        routed(RoutedPayload::DhtGetReplica { key: b, token }),
        routed(RoutedPayload::DhtReplicaValue {
            token,
            copy: Some((Bytes::from(payload.clone()), token, token)),
        }),
        routed(RoutedPayload::DhtReplicaValue { token, copy: None }),
        routed(RoutedPayload::DhtRemove { key: a }),
        routed(RoutedPayload::DhtWithdraw {
            key: a,
            value: Bytes::from(payload.clone()),
            version: token,
        }),
        routed(RoutedPayload::DhtSyncDigest {
            entries: digest,
            from_owner: true,
        }),
        routed(RoutedPayload::DhtSyncPull { keys: vec![a, b] }),
        routed(RoutedPayload::PubSubSubscribe {
            topic: a,
            subscriber: b,
            ttl_ms: token,
        }),
        routed(RoutedPayload::PubSubUnsubscribe {
            topic: a,
            subscriber: b,
        }),
        routed(RoutedPayload::PubSubPublish {
            topic: a,
            msg_id: token,
            payload: Bytes::from(payload.clone()),
        }),
        routed(RoutedPayload::PubSubDeliver {
            topic: a,
            msg_id: token,
            relay_to: (0..entries).map(|i| Address([i; 20])).collect(),
            payload: Bytes::from(payload.clone()),
        }),
        routed(RoutedPayload::PubSubNack {
            topic: a,
            msg_id: token,
        }),
        routed(RoutedPayload::StreamSyn {
            stream_id: token,
            window: token as u32,
        }),
        routed(RoutedPayload::StreamSynAck {
            stream_id: token,
            window: token as u32,
        }),
        routed(RoutedPayload::StreamData {
            stream_id: token,
            seq: token,
            window: token as u32,
            payload: Bytes::from(payload),
        }),
        routed(RoutedPayload::StreamAck {
            stream_id: token,
            ack: token,
            window: token as u32,
        }),
        routed(RoutedPayload::StreamFin {
            stream_id: token,
            seq: token,
        }),
    ]
}

proptest! {
    #[test]
    fn mutated_wire_images_never_panic_the_decoders(
        a in arb_addr(), b in arb_addr(), token: u64,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        entries in 0u8..12,
        flip_at: [usize; 3],
        flip_mask in proptest::collection::vec(1u8..=255, 3..4),
        cut: usize,
        garbage in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        for image in corpus(a, b, token, payload.clone(), entries) {
            // Byte flips anywhere in the image (what a corrupting link does).
            let mut flipped = image.clone();
            for (idx, x) in flip_at.iter().zip(&flip_mask) {
                let i = idx % flipped.len().max(1);
                if let Some(byte) = flipped.get_mut(i) {
                    *byte ^= *x;
                }
            }
            if let Ok(msg) = LinkMessage::from_bytes(&flipped) {
                let _ = msg.to_bytes();
            }
            let shared = Bytes::from(flipped);
            if let Ok(msg) = LinkMessage::from_wire(&shared) {
                let _ = msg.to_wire();
            }

            // Truncation at an arbitrary point (what loss mid-fragment does).
            let cut_at = cut % (image.len() + 1);
            prop_assert!(
                cut_at == image.len() || LinkMessage::from_bytes(&image[..cut_at]).is_err(),
                "a strict prefix decoded as a whole message"
            );

            // Trailing garbage must be rejected, not silently swallowed.
            if !garbage.is_empty() {
                let mut padded = image.clone();
                padded.extend_from_slice(&garbage);
                prop_assert!(
                    LinkMessage::from_bytes(&padded).is_err(),
                    "trailing bytes were silently accepted"
                );
            }

            // And the untouched image still round-trips, both decode paths.
            let msg = LinkMessage::from_bytes(&image).unwrap();
            prop_assert_eq!(msg.to_bytes(), image.clone());
            let shared = Bytes::from(image.clone());
            let via_wire = LinkMessage::from_wire(&shared).unwrap();
            prop_assert_eq!(via_wire.to_wire().as_slice(), image.as_slice());
        }
    }

    #[test]
    fn byte_soup_never_panics_the_shared_buffer_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        // `from_bytes` soup coverage lives in proptest_overlay.rs; this is
        // the `from_wire` (shared-buffer, wire-image-caching) path.
        let shared = Bytes::from(data);
        if let Ok(msg) = LinkMessage::from_wire(&shared) {
            let _ = msg.to_wire();
        }
    }
}
