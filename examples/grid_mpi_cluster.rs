//! The paper's headline case study (Section IV-C): an unmodified MPI application
//! (LSS) using SSH, message passing and NFS-mounted volumes across three
//! firewalled wide-area domains, aggregated into one virtual cluster by IPOP.
//!
//! Run with `cargo run -p ipop-examples --bin grid_mpi_cluster --release`.

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::lss::{LssMaster, LssParams, LssWorker};
use ipop_simcore::Duration;

fn main() {
    // A scaled-down LSS workload (2 MB databases) so the example finishes quickly;
    // the full Table IV run lives in `cargo run -p ipop-bench --bin table4_lss`.
    // `--quick` shrinks it further for smoke tests.
    let params = if ipop_bench::quick_mode() {
        LssParams {
            images: 2,
            databases: 2,
            database_size: 512 * 1024,
            compute_per_mb: Duration::from_secs(5),
        }
    } else {
        LssParams {
            images: 4,
            databases: 4,
            database_size: 2 * 1024 * 1024,
            compute_per_mb: Duration::from_secs(15),
        }
    };

    for workers in [1usize, 4] {
        let report = ipop_bench_like_lss(workers, params.clone());
        println!("--- {workers} compute node(s) ---");
        println!(
            "  image 1 (cold NFS caches): {:>7.1} s",
            report.first_image()
        );
        println!(
            "  images 2-{} (warm caches):  {:>7.1} s",
            params.images,
            report.remaining_images()
        );
        println!("  total:                     {:>7.1} s", report.total());
    }
}

/// Build the Fig. 4 testbed, deploy the LSS roles over IPOP and run to completion.
fn ipop_bench_like_lss(workers: usize, params: LssParams) -> ipop_apps::lss::LssReport {
    use ipop_apps::lss::LssFileServer;
    use std::net::Ipv4Addr;

    let mut net = Network::new(2026);
    let tb = ipop_netsim::fig4_testbed(&mut net);
    let vips = [
        Ipv4Addr::new(172, 16, 0, 3),
        Ipv4Addr::new(172, 16, 0, 4),
        Ipv4Addr::new(172, 16, 0, 51),
        Ipv4Addr::new(172, 16, 0, 2),
        Ipv4Addr::new(172, 16, 0, 18),
        Ipv4Addr::new(172, 16, 0, 20),
    ];
    let nfs_vip = vips[3];
    let master_vip = vips[2];
    let worker_hosts = [tb.f1, tb.f2, tb.v1, tb.l1];
    let worker_vips = [vips[0], vips[1], vips[4], vips[5]];
    let mut members = vec![
        IpopMember::new(tb.f4, nfs_vip, Box::new(LssFileServer::new(params.clone()))),
        IpopMember::new(
            tb.f3,
            master_vip,
            Box::new(LssMaster::new(params.clone(), workers)),
        ),
    ];
    for i in 0..4 {
        if i < workers {
            members.push(IpopMember::new(
                worker_hosts[i],
                worker_vips[i],
                Box::new(LssWorker::new(params.clone(), master_vip, nfs_vip)),
            ));
        } else {
            members.push(IpopMember::router(worker_hosts[i], worker_vips[i]));
        }
    }
    deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    // Run until the master reports completion (bounded).
    for _ in 0..4000 {
        sim.run_for(Duration::from_secs(1));
        let done = sim
            .agent_as::<IpopHostAgent>(tb.f3)
            .and_then(|a| a.app_as::<LssMaster>())
            .is_some_and(|m| m.finished());
        if done {
            break;
        }
    }
    sim.agent_as::<IpopHostAgent>(tb.f3)
        .and_then(|a| a.app_as::<LssMaster>())
        .map(|m| m.report().clone())
        .unwrap_or_default()
}
