//! NAT and firewall traversal: the scenario that motivates IPOP.
//!
//! One machine sits on a private LAN behind a port-restricted NAT, the other
//! behind a default-deny-inbound firewall. Neither can receive unsolicited
//! connections, yet after both join the IPOP overlay, bidirectional virtual IP
//! connectivity exists and a TCP transfer runs across the two middleboxes.
//!
//! Run with `cargo run -p ipop-examples --bin nat_traversal`.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop_apps::ttcp::TtcpApp;
use ipop_netsim::{Firewall, NatBox, NatType, Prefix, SiteSpec};

fn main() {
    let mut net = Network::new(11);

    // Site 1: private LAN behind a port-restricted cone NAT.
    let nat_site = net.add_site(SiteSpec::open("home-lab").with_nat(
        NatBox::new(NatType::PortRestrictedCone, Ipv4Addr::new(128, 10, 0, 1)),
        Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16),
    ));
    // Site 2: campus machine behind a stateful default-deny-inbound firewall.
    let fw_site =
        net.add_site(SiteSpec::open("campus").with_firewall(Firewall::default_deny_inbound()));
    // Site 3: one publicly reachable machine acting as the overlay bootstrap.
    let public_site = net.add_site(SiteSpec::open("public"));

    let inside = net.add_host("behind-nat", nat_site, Ipv4Addr::new(192, 168, 0, 2));
    let guarded = net.add_host("behind-firewall", fw_site, Ipv4Addr::new(139, 70, 24, 100));
    let bootstrap = net.add_host("bootstrap", public_site, Ipv4Addr::new(128, 227, 56, 83));

    // The NATed machine serves a ttcp transfer TO the firewalled machine — traffic
    // that would be impossible to set up directly in either direction.
    let sender_vip = Ipv4Addr::new(172, 16, 0, 2);
    let receiver_vip = Ipv4Addr::new(172, 16, 0, 18);
    deploy_ipop(
        &mut net,
        vec![
            IpopMember::router(bootstrap, Ipv4Addr::new(172, 16, 0, 1)),
            IpopMember::new(
                inside,
                sender_vip,
                Box::new(
                    TtcpApp::sender(receiver_vip, 5201, 2_000_000)
                        .with_start_delay(Duration::from_secs(15)),
                ),
            ),
            IpopMember::new(guarded, receiver_vip, Box::new(TtcpApp::receiver(5201))),
        ],
        DeployOptions::udp(),
    );

    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(120));

    let sender = sim.agent_as::<IpopHostAgent>(inside).unwrap();
    let receiver = sim.agent_as::<IpopHostAgent>(guarded).unwrap();
    let report = sender.app_as::<TtcpApp>().unwrap().report();
    println!(
        "NAT-ed sender connected to the overlay:    {}",
        sender.is_connected()
    );
    println!(
        "firewalled receiver connected to overlay:  {}",
        receiver.is_connected()
    );
    println!(
        "bytes received across NAT + firewall:      {}",
        receiver.app_as::<TtcpApp>().unwrap().received()
    );
    println!(
        "transfer: {:.2} MB in {:.1} s  ->  {:.0} KB/s over the virtual network",
        report.bytes as f64 / 1e6,
        report.seconds,
        report.kbps
    );
    println!(
        "NAT mappings created: {}, firewall flows tracked: {}",
        sim.net()
            .site(sim.net().host(inside).site)
            .nat
            .as_ref()
            .map_or(0, |n| n.mapping_count()),
        sim.net()
            .site(sim.net().host(guarded).site)
            .firewall
            .as_ref()
            .map_or(0, |f| f.established_flows())
    );
}
