//! A wide-area overlay at Planet-Lab scale: dozens of self-configuring IPOP nodes
//! on heavily loaded machines, with virtual-network pings routed across multiple
//! overlay hops (the Fig. 5 scenario at reduced size).
//!
//! Run with `cargo run -p ipop-examples --bin planetlab_overlay --release`
//! (`--quick` for a smaller overlay and fewer pings).

use ipop_bench::fig5::{self, Fig5Params};

fn main() {
    let params = if ipop_bench::quick_mode() {
        Fig5Params {
            nodes: 16,
            load: 10.0,
            pings: 20,
        }
    } else {
        Fig5Params {
            nodes: 40,
            load: 10.0,
            pings: 200,
        }
    };
    println!(
        "deploying a {}-node overlay on CPU-loaded hosts and sending {} pings...",
        params.nodes, params.pings
    );
    let out = fig5::run(&params);
    fig5::render_summary(&out, &params).print();
    println!("RTT distribution (ms):\n{}", out.histogram.ascii_chart(50));
}
