//! Smoke tests: every documented example binary must run to completion and
//! print evidence that its scenario actually worked, so the entry points in the
//! README cannot silently rot.
//!
//! Cargo builds the `[[bin]]` targets before running this integration test and
//! exposes their paths via `CARGO_BIN_EXE_<name>`.

use std::process::Command;

/// Run one example binary (with `--quick` where supported) and return stdout.
fn run(path: &str, args: &[&str]) -> String {
    let output = Command::new(path)
        .args(args)
        .output()
        .expect("example binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "{path} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    stdout
}

#[test]
fn quickstart_pings_over_the_virtual_network() {
    let out = run(env!("CARGO_BIN_EXE_quickstart"), &[]);
    assert!(out.contains("IPOP node connected: true"), "{out}");
    assert!(out.contains("20 replies"), "{out}");
}

#[test]
fn nat_traversal_moves_bytes_across_middleboxes() {
    let out = run(env!("CARGO_BIN_EXE_nat_traversal"), &[]);
    assert!(
        out.contains("NAT-ed sender connected to the overlay:    true"),
        "{out}"
    );
    assert!(
        out.contains("bytes received across NAT + firewall:      2000000"),
        "{out}"
    );
}

#[test]
fn grid_mpi_cluster_completes_the_lss_runs() {
    let out = run(env!("CARGO_BIN_EXE_grid_mpi_cluster"), &["--quick"]);
    assert!(out.contains("--- 1 compute node(s) ---"), "{out}");
    assert!(out.contains("--- 4 compute node(s) ---"), "{out}");
    assert!(out.contains("total:"), "{out}");
}

#[test]
fn selfconfig_dhcp_allocates_every_address() {
    let out = run(env!("CARGO_BIN_EXE_selfconfig_dhcp"), &["--quick"]);
    assert!(
        out.contains("dynamically allocated addresses: 11/11"),
        "{out}"
    );
    assert!(out.contains("name service: grid-5 -> 172.16.9."), "{out}");
}

#[test]
fn planetlab_overlay_reports_a_distribution() {
    let out = run(env!("CARGO_BIN_EXE_planetlab_overlay"), &["--quick"]);
    assert!(out.contains("Fig. 5"), "{out}");
    assert!(out.contains("RTT distribution (ms):"), "{out}");
}
