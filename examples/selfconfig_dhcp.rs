//! Self-configuration: machines join the virtual network knowing *only* the
//! subnet and a bootstrap endpoint. Each draws a candidate address from its
//! own random stream, claims it atomically in the overlay DHT (the claim
//! doubles as the Brunet-ARP mapping), confirms, and renews the claim as a
//! lease — zero per-host IP configuration, the paper's headline property.
//!
//! Run with `cargo run -p ipop-examples --bin selfconfig_dhcp [-- --quick]`.

use std::net::Ipv4Addr;

use ipop::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    let nodes = if quick { 12 } else { 24 };

    // 1. A Planet-Lab-like physical topology with one publicly reachable
    //    bootstrap machine.
    let mut net = Network::new(41);
    let plab = ipop_netsim::planetlab(&mut net, nodes, 1.0, 41);

    // 2. Only the bootstrap is configured; everyone else joins with nothing
    //    but the subnet, a hostname, and the bootstrap endpoint.
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for (i, &h) in plab.nodes.iter().enumerate().skip(1) {
        members.push(IpopMember::dynamic_router(h).with_hostname(&format!("grid-{i}")));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 9, 0), 24);
    deploy_ipop(&mut net, members, options);

    // 3. Run until the overlay has formed and every node has claimed an
    //    address through the DHT.
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(60));

    let mut bound = 0;
    let mut collisions = 0;
    let mut worst_latency = Duration::ZERO;
    for (i, &h) in plab.nodes.iter().enumerate().skip(1) {
        let agent = sim.agent_as::<IpopHostAgent>(h).expect("ipop agent");
        if agent.has_address() {
            bound += 1;
        }
        collisions += agent.allocation_collisions().unwrap_or(0);
        if let Some(l) = agent.allocation_latency() {
            worst_latency = worst_latency.max(l);
        }
        if i <= 4 {
            println!(
                "grid-{i}: allocated {} in {:.2} s",
                agent.virtual_ip(),
                agent.allocation_latency().map_or(0.0, |d| d.as_secs_f64())
            );
        }
    }
    println!(
        "dynamically allocated addresses: {bound}/{} (collisions retried: {collisions}, slowest {:.2} s)",
        nodes - 1,
        worst_latency.as_secs_f64()
    );

    // 4. Resolve a peer by hostname through the overlay name service.
    let prober = plab.nodes[1];
    let now = sim.now();
    sim.net_mut()
        .agent_as_mut::<IpopHostAgent>(prober)
        .unwrap()
        .lookup_name(now, "grid-5");
    sim.run_for(Duration::from_secs(5));
    for (name, ip) in sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(prober)
        .unwrap()
        .take_name_results()
    {
        match ip {
            Some(ip) => println!("name service: {name} -> {ip}"),
            None => println!("name service: {name} -> (unregistered)"),
        }
    }
}
