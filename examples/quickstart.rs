//! Quickstart: build a two-site physical network, join both machines to an IPOP
//! virtual network and ping across it — the "hello world" of the paper.
//!
//! Run with `cargo run -p ipop-examples --bin quickstart`.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop_apps::ping::PingApp;

fn main() {
    // 1. A physical network: two hosts at two sites connected over a wide-area core.
    let mut net = Network::new(7);
    let (a, b, _, _) = ipop_netsim::wan_pair(&mut net);

    // 2. Join both to a virtual 172.16.0.0/16 network; host A pings host B's
    //    virtual address once the overlay has self-configured.
    let target = Ipv4Addr::new(172, 16, 0, 2);
    deploy_ipop(
        &mut net,
        vec![
            IpopMember::new(
                a,
                Ipv4Addr::new(172, 16, 0, 1),
                Box::new(
                    PingApp::new(target, 20, Duration::from_millis(100))
                        .with_start_delay(Duration::from_secs(10)),
                ),
            ),
            IpopMember::router(b, target),
        ],
        DeployOptions::udp(),
    );

    // 3. Run the simulation.
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(30));

    // 4. Inspect the results.
    let node = sim
        .agent_as::<IpopHostAgent>(a)
        .expect("IPOP node on host A");
    let report = node.app_as::<PingApp>().expect("ping app").report();
    let summary = report.summary();
    println!("IPOP node connected: {}", node.is_connected());
    println!(
        "ping {} over the virtual network: {} replies, mean RTT {:.3} ms (std dev {:.3} ms)",
        target,
        report.rtts_ms.len(),
        summary.mean,
        summary.std_dev
    );
    println!(
        "packets tunnelled through the overlay: {} sent / {} received",
        node.metrics().tunneled_tx,
        node.metrics().tunneled_rx
    );
}
