//! Offline subset of `rayon`: `into_par_iter().map(..).collect()` backed by real
//! OS threads (`std::thread::scope`), plus `join`.
//!
//! The experiment harness only fans out *independent simulations* — a handful of
//! coarse scenarios per table — so a chunk-per-thread scheduler is a faithful
//! stand-in for rayon's work stealing at this granularity. Result order is
//! preserved exactly as rayon's indexed parallel iterators preserve it.

/// Number of worker threads to fan out across.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// Conversion into a parallel iterator, as `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// An eagerly materialized "parallel iterator" over `items`.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// A `ParIter` with a pending element-wise map.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

/// Map `f` over `items` with one chunk per worker thread, preserving order.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads().min(n);
    let chunk_len = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        let mut items = items;
        // Split from the back so each spawned chunk owns its elements.
        while !items.is_empty() {
            let at = items.len().saturating_sub(chunk_len);
            let chunk: Vec<T> = items.split_off(at);
            handles.push(s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()));
        }
        let mut out = Vec::with_capacity(n);
        for handle in handles.into_iter().rev() {
            out.extend(handle.join().expect("rayon worker panicked"));
        }
        out
    })
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        parallel_map(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync + Send,
{
    pub fn map<V, G>(self, g: G) -> ParMap<T, impl Fn(T) -> V + Sync + Send>
    where
        V: Send,
        G: Fn(U) -> V + Sync + Send,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |x| g(f(x)),
        }
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync + Send,
    {
        let f = self.f;
        parallel_map(self.items, move |x| g(f(x)));
    }

    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParMap};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let _out: Vec<u32> = v
            .into_par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // A little work so threads overlap.
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn chained_map_composes() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| x * 10)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["10", "20", "30"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<u8> = vec![9u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![10]);
    }
}
