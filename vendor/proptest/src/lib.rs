//! Offline subset of `proptest`: random-input property testing without
//! shrinking.
//!
//! Supports the surface this workspace's tests use: the [`proptest!`] macro with
//! both `name in strategy` and `name: Type` bindings, [`any`], integer-range
//! strategies, [`Strategy::prop_map`], [`collection::vec`], [`option::of`] and
//! the `prop_assert*` macros. Inputs are drawn from a deterministic SplitMix64
//! stream; set `PROPTEST_CASES` to change the number of cases per property
//! (default 64) and `PROPTEST_SEED` to reproduce a failing run (both printed on
//! failure).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to generate test inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform value in `[0, span)` without modulo bias.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample empty range");
        let limit = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < limit {
                return v % span;
            }
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs. Unlike real proptest there is no shrinking: a
/// strategy is just a seeded sampler.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix in boundary values often: property tests find most bugs at
                // the extremes, which uniform sampling of wide types rarely hits.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.next_u32() % 0xD800).unwrap_or('\u{FFFD}')
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

pub mod collection {
    //! `proptest::collection` subset: `vec`.
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A strategy for vectors whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `proptest::option` subset: `of`.
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy producing `None` about a quarter of the time and `Some`
    /// values from `inner` otherwise (matching real proptest's default weight).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Number of cases to run per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Base seed for input generation (`PROPTEST_SEED`, default 0).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// FNV-1a hash used to give every property its own input stream.
pub fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Bind one parameter list entry: `name in strategy` or `name: Type`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// The `proptest!` test-definition macro.
///
/// Each property becomes a `#[test]` that runs [`cases`] random cases. On
/// failure the case index and reproduction seed are printed before the panic
/// propagates.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let total = $crate::cases();
                let stream = $crate::base_seed() ^ $crate::fnv1a(stringify!($name));
                for case in 0..total {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let mut __proptest_rng = $crate::TestRng::new(stream ^ (case.wrapping_mul(0x9E3779B97F4A7C15)));
                        $crate::__proptest_bind!(__proptest_rng; $($params)*);
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest: property {} failed at case {case}/{total} \
                             (rerun with PROPTEST_SEED={})",
                            stringify!($name),
                            $crate::base_seed(),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn in_binding_draws_from_strategy(x in 10u8..20, y in 0u16..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn colon_binding_uses_arbitrary(a: u16, flag: bool, bytes: [u8; 6]) {
            let _ = (a, flag);
            prop_assert_eq!(bytes.len(), 6);
        }

        #[test]
        fn prop_map_and_collections_compose(
            v in crate::collection::vec(any::<u8>(), 0..50),
            o in crate::option::of(0u32..5),
            mapped in (0u8..10).prop_map(|x| x as u32 * 2)
        ) {
            prop_assert!(v.len() < 50);
            if let Some(inner) = o {
                prop_assert!(inner < 5);
            }
            prop_assert!(mapped % 2 == 0 && mapped < 20);
        }
    }

    #[test]
    fn same_seed_reproduces_inputs() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        let s = crate::collection::vec(any::<u64>(), 1..9);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
