//! Offline subset of `criterion`: a small wall-clock benchmarking harness with
//! criterion's API shape (groups, throughput, batched iteration, the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! Measurement model: each benchmark is warmed up, then the iteration count is
//! auto-tuned so one sample takes roughly `sample_time`, and `sample_size`
//! samples are collected. The median per-iteration time is reported, plus
//! throughput when configured. No statistics beyond that — this exists so
//! `cargo bench` produces honest numbers offline, not to replace criterion's
//! analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// How a batched setup's output is grouped; only the API shape matters here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    sample_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
            sample_time: Duration::from_millis(50),
        }
    }

    /// Time `routine`, auto-tuning the iteration count per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: grow the iteration count until one sample is
        // long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_time || iters >= 1 << 30 {
                self.iters_per_sample = iters;
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.sample_time.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed region; per-input timing keeps that
        // exclusion exact at the cost of timer overhead on tiny routines.
        let mut timed = |n: u64| {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                total += start.elapsed();
            }
            total
        };
        let mut iters: u64 = 1;
        loop {
            let elapsed = timed(iters);
            if elapsed >= self.sample_time || iters >= 1 << 30 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 0..self.sample_size {
            self.samples.push(timed(self.iters_per_sample));
        }
    }

    /// Median per-iteration time across samples.
    fn per_iter(&self) -> Duration {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / self.iters_per_sample.min(u32::MAX as u64) as u32
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = bencher.per_iter();
    let mut line = format!("{name:<50} time: {}", format_time(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Bytes(bytes) => {
                    let rate = bytes as f64 / secs;
                    line.push_str(&format!("  thrpt: {:.2} MiB/s", rate / (1024.0 * 1024.0)));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(full, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, full_name: String, mut f: F) {
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&full_name, &bencher, self.throughput);
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; harness flags criterion also accepts are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        if self.matches(&name) {
            let mut bencher = Bencher::new(self.sample_size);
            f(&mut bencher);
            report(&name, &bencher, None);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
            sample_size,
        }
    }
}

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut b = Bencher::new(3);
        b.sample_time = Duration::from_micros(200);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.per_iter() > Duration::ZERO || count > 0);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher::new(2);
        b.sample_time = Duration::from_micros(100);
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 2);
    }

    #[test]
    fn group_api_shape_works() {
        let mut c = Criterion {
            filter: Some("never-matches-anything".into()),
            sample_size: 2,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(10)).sample_size(2);
        // Filtered out: the closure must not run.
        group.bench_function("x", |_b| panic!("should be filtered"));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4, |_b, _n| {
            panic!("should be filtered")
        });
        group.finish();
    }

    #[test]
    fn format_time_scales() {
        assert_eq!(format_time(Duration::from_nanos(5)), "5 ns");
        assert!(format_time(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_time(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_time(Duration::from_secs(5)).ends_with(" s"));
    }
}
