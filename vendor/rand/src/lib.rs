//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds with no network access, so the handful of `rand` APIs
//! the code actually uses are reimplemented here and wired in through a path
//! dependency (see `vendor/README.md`). The value streams are deterministic and
//! stable across platforms, which is all the simulator requires; they make no
//! attempt to be bit-identical to upstream `rand`.

use std::ops::Range;

/// A source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64, then seed the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as upstream rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64, u128 => next_u64, i128 => next_u64);

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform value in `[0, span)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Minimal stand-in for `rand::rngs`.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let n = chunk.len();
                chunk.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
            let b = r.gen_range(1u8..=255);
            assert!(b >= 1);
        }
    }
}
