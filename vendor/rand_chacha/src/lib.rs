//! Offline subset of `rand_chacha`: a real ChaCha12 keystream generator behind
//! the `ChaCha12Rng` name, implementing this workspace's vendored `rand` traits.
//!
//! The keystream is the genuine ChaCha12 function (djb variant, 64-bit block
//! counter), so output quality matches upstream; the word-to-integer mapping is
//! not guaranteed bit-identical to the upstream crate, only stable across
//! platforms and releases of this workspace — which is the property the
//! deterministic simulator actually depends on.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BLOCK_BYTES: usize = 64;
const ROUNDS: usize = 12;

/// A ChaCha12 random number generator seeded with a 256-bit key.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// Key words 0..8 of the ChaCha state (words 4..12 of the full state).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14; nonce words 14..16 stay zero).
    counter: u64,
    /// Current keystream block.
    buf: [u8; BLOCK_BYTES],
    /// Next unconsumed byte in `buf`; `BLOCK_BYTES` means "refill needed".
    pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, out: &mut [u8; BLOCK_BYTES]) {
    let mut state: [u32; BLOCK_WORDS] = [
        0x61707865,
        0x3320646e,
        0x79622d32,
        0x6b206574, // "expand 32-byte k"
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (i, word) in state.iter().enumerate() {
        let mixed = word.wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&mixed.to_le_bytes());
    }
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        chacha_block(&self.key, self.counter, &mut self.buf);
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }

    #[inline]
    fn take_bytes<const N: usize>(&mut self) -> [u8; N] {
        debug_assert!(N <= BLOCK_BYTES);
        if self.pos + N > BLOCK_BYTES {
            self.refill();
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buf: [0u8; BLOCK_BYTES],
            pos: BLOCK_BYTES,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes::<4>())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes::<8>())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.pos == BLOCK_BYTES {
                self.refill();
            }
            let n = (dest.len() - filled).min(BLOCK_BYTES - self.pos);
            dest[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            filled += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 test vector machinery checks the ChaCha core (the RFC specifies
    /// ChaCha20; we verify our quarter-round through the 2.1.1 vector).
    #[test]
    fn rfc8439_quarter_round_vector() {
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        let mut c = ChaCha12Rng::from_seed([8u8; 32]);
        for _ in 0..256 {
            let va = a.next_u64();
            assert_eq!(va, b.next_u64());
            assert_ne!(va, c.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_streamed_words() {
        let mut a = ChaCha12Rng::from_seed([3u8; 32]);
        let mut b = ChaCha12Rng::from_seed([3u8; 32]);
        let mut buf = [0u8; 24];
        a.fill_bytes(&mut buf);
        let mut expect = [0u8; 24];
        for chunk in expect.chunks_mut(8) {
            chunk.copy_from_slice(&b.next_u64().to_le_bytes());
        }
        assert_eq!(buf, expect);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::from_seed([9u8; 32]);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
